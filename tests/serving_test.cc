// Multi-tenant serving tests: the RequestQueue contract, dynamic batching
// bit-identity (batched forward passes must equal unbatched ones exactly),
// weight sharing across sessions, shape bucketing, backpressure, and the
// event-loop completion path.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/event_loop.h"
#include "core/metrics.h"
#include "layers/conv_layers.h"
#include "layers/core_layers.h"
#include "layers/quantize.h"
#include "layers/sequential.h"
#include "models/mobilenet.h"
#include "ops/ops.h"
#include "serving/request_queue.h"
#include "serving/server.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
using layers::Dense;
using layers::DenseOptions;
using layers::Sequential;
using serving::InferenceResult;
using serving::InferenceServer;
using serving::RequestQueue;
using serving::ServerOptions;

/// Tiny MLP: [4] -> Dense(8, relu) -> Dense(3, softmax). Layer names are
/// fixed, so every instance draws bit-identical weights (per-weight seeds
/// hash the layer/weight name).
std::unique_ptr<Sequential> makeMlp() {
  auto model = std::make_unique<Sequential>("serving_mlp");
  DenseOptions d1;
  d1.units = 8;
  d1.activation = "relu";
  d1.name = "fc1";
  model->add(std::make_shared<Dense>(d1));
  DenseOptions d2;
  d2.units = 3;
  d2.activation = "softmax";
  d2.name = "fc2";
  model->add(std::make_shared<Dense>(d2));
  return model;
}

/// Small conv net that accepts any spatial size (conv -> GAP -> dense):
/// used to exercise shape bucketing with one set of weights.
std::unique_ptr<Sequential> makeConvNet() {
  auto model = std::make_unique<Sequential>("serving_conv");
  layers::Conv2DOptions c;
  c.filters = 4;
  c.kernelH = c.kernelW = 3;
  c.padding = "same";
  c.activation = "relu";
  c.name = "conv";
  model->add(std::make_shared<layers::Conv2D>(c));
  model->add(std::make_shared<layers::GlobalAveragePooling2D>("gap"));
  DenseOptions d;
  d.units = 2;
  d.name = "head";
  model->add(std::make_shared<Dense>(d));
  return model;
}

std::vector<float> randomInput(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.f, 1.f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  return v;
}

/// Ground truth: a [1, ...] forward pass through `model` on the current
/// backend, values downloaded to host.
std::vector<float> directPredict(Sequential& model,
                                 const std::vector<float>& input,
                                 const Shape& exampleShape) {
  std::vector<int> dims{1};
  for (int d : exampleShape.dims()) dims.push_back(d);
  Tensor x = Engine::get().makeTensorFromHost(input, Shape(dims));
  Tensor y = model.predict(x);
  std::vector<float> out = y.dataSync();
  x.dispose();
  y.dispose();
  return out;
}

// ----------------------------------------------------------- RequestQueue

TEST(RequestQueueTest, FifoAndCapacity) {
  RequestQueue<int> q(2);
  EXPECT_TRUE(q.tryPush(1));
  EXPECT_TRUE(q.tryPush(2));
  EXPECT_FALSE(q.tryPush(3));  // full: load shed
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.tryPop().value(), 1);
  EXPECT_EQ(q.tryPop().value(), 2);
  EXPECT_FALSE(q.tryPop().has_value());
}

TEST(RequestQueueTest, BlockingPushWaitsForSpace) {
  RequestQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.popFor(std::chrono::milliseconds(100)).value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.tryPop().value(), 2);
}

TEST(RequestQueueTest, CloseUnblocksAndDrains) {
  RequestQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));     // rejected after close
  EXPECT_FALSE(q.tryPush(9));
  EXPECT_EQ(q.popFor(std::chrono::milliseconds(1)).value(), 7);  // drains
  EXPECT_FALSE(q.popFor(std::chrono::milliseconds(1)).has_value());
}

// --------------------------------------------------------------- serving

TEST(ServingTest, SingleRequestMatchesDirectPredict) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 1;
  InferenceServer server(makeMlp(), opts);
  auto session = server.createSession("alice");

  const auto input = randomInput(4, 1);
  InferenceResult res = session->inferSync(input, Shape{4});
  EXPECT_EQ(res.batchSize, 1);
  EXPECT_EQ(res.shape.toString(), Shape({1, 3}).toString());

  server.stop();
  setBackend("native");
  EXPECT_EQ(res.values, directPredict(server.model(), input, Shape{4}));
}

TEST(ServingTest, BatchedOutputsBitIdenticalToUnbatched) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 8;
  opts.batchDelayMs = 100;  // generous linger so all 8 coalesce
  InferenceServer server(makeMlp(), opts);
  auto session = server.createSession();

  constexpr int kRequests = 8;
  std::vector<std::vector<float>> inputs;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < kRequests; ++i) {
    inputs.push_back(randomInput(4, 100 + static_cast<std::uint32_t>(i)));
    futures.push_back(session->infer(inputs.back(), Shape{4}));
  }
  std::vector<InferenceResult> results;
  for (auto& f : futures) results.push_back(f.get());
  server.stop();

  // Batching must have actually coalesced (the linger window is 100 ms and
  // all 8 requests were queued within microseconds of each other).
  EXPECT_GE(server.stats().maxBatchSize, 2);
  EXPECT_EQ(server.stats().requests, static_cast<std::uint64_t>(kRequests));

  // Per-request outputs must be bitwise equal to the unbatched forward.
  setBackend("native");
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].values,
              directPredict(server.model(), inputs[static_cast<std::size_t>(i)],
                            Shape{4}))
        << "request " << i << " (batchSize "
        << results[static_cast<std::size_t>(i)].batchSize << ")";
  }
}

TEST(ServingTest, PaddedBatchesStayBitIdentical) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 8;
  opts.batchDelayMs = 50;
  opts.padToPowerOfTwo = true;
  InferenceServer server(makeMlp(), opts);
  auto session = server.createSession();

  // 3 requests -> padded to a 4-row forward pass.
  std::vector<std::vector<float>> inputs;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 3; ++i) {
    inputs.push_back(randomInput(4, 200 + static_cast<std::uint32_t>(i)));
    futures.push_back(session->infer(inputs.back(), Shape{4}));
  }
  std::vector<InferenceResult> results;
  for (auto& f : futures) results.push_back(f.get());
  server.stop();

  setBackend("native");
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].values,
              directPredict(server.model(), inputs[i], Shape{4}));
    if (results[i].batchSize == 3) {
      EXPECT_EQ(results[i].batchPadding, 1);
    }
  }
  EXPECT_GE(server.stats().paddedRows, 0u);
}

TEST(ServingTest, TwoSessionsShareWeightsBitIdenticalToSequential) {
  models::MobileNetOptions mopts;
  mopts.alpha = 0.25f;
  mopts.inputSize = 32;
  mopts.numClasses = 10;

  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 4;
  opts.batchDelayMs = 20;
  InferenceServer server(models::buildMobileNetV1(mopts), opts);

  const Shape example{32, 32, 3};
  constexpr int kPerSession = 3;
  std::vector<std::vector<float>> inputsA, inputsB;
  for (int i = 0; i < kPerSession; ++i) {
    inputsA.push_back(randomInput(example.size(),
                                  300 + static_cast<std::uint32_t>(i)));
    inputsB.push_back(randomInput(example.size(),
                                  400 + static_cast<std::uint32_t>(i)));
  }

  // Two concurrent clients, each on its own thread, sharing one weight set.
  std::vector<InferenceResult> resultsA(kPerSession), resultsB(kPerSession);
  auto client = [&](const char* name,
                    const std::vector<std::vector<float>>& inputs,
                    std::vector<InferenceResult>& results) {
    auto session = server.createSession(name);
    std::vector<std::future<InferenceResult>> futures;
    for (const auto& in : inputs) {
      futures.push_back(session->infer(in, example));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      results[i] = futures[i].get();
    }
  };
  std::thread threadA(client, "alice", std::cref(inputsA),
                      std::ref(resultsA));
  std::thread threadB(client, "bob", std::cref(inputsB), std::ref(resultsB));
  threadA.join();
  threadB.join();
  server.stop();

  // Ground truth: the same model, driven sequentially single-request.
  setBackend("native");
  for (int i = 0; i < kPerSession; ++i) {
    EXPECT_EQ(resultsA[static_cast<std::size_t>(i)].values,
              directPredict(server.model(),
                            inputsA[static_cast<std::size_t>(i)], example))
        << "session A request " << i;
    EXPECT_EQ(resultsB[static_cast<std::size_t>(i)].values,
              directPredict(server.model(),
                            inputsB[static_cast<std::size_t>(i)], example))
        << "session B request " << i;
  }
}

TEST(ServingTest, TwoSessionsBatchSharedQuantizedMobileNet) {
  // Mirror of the f32 two-session parity test on an int8-quantized model:
  // both sessions batch against ONE shared set of int8 weights (and the
  // native backend's packed-panel cache), and because activations are
  // quantized per GEMM row, batching cannot change any request's result —
  // outputs must equal the unbatched quantized pass bit for bit.
  models::MobileNetOptions mopts;
  mopts.alpha = 0.25f;
  mopts.inputSize = 32;
  mopts.numClasses = 10;

  setBackend("native");
  auto model = models::buildMobileNetV1(mopts);
  model->build(Shape{1, mopts.inputSize, mopts.inputSize, 3});
  const int quantized = layers::quantizeWeightsInt8(*model);
  EXPECT_GT(quantized, 0) << "MobileNet must have quantizable kernels";

  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 4;
  opts.batchDelayMs = 20;
  InferenceServer server(std::move(model), opts);

  const Shape example{32, 32, 3};
  constexpr int kPerSession = 3;
  std::vector<std::vector<float>> inputsA, inputsB;
  for (int i = 0; i < kPerSession; ++i) {
    inputsA.push_back(randomInput(example.size(),
                                  500 + static_cast<std::uint32_t>(i)));
    inputsB.push_back(randomInput(example.size(),
                                  600 + static_cast<std::uint32_t>(i)));
  }

  std::vector<InferenceResult> resultsA(kPerSession), resultsB(kPerSession);
  auto client = [&](const char* name,
                    const std::vector<std::vector<float>>& inputs,
                    std::vector<InferenceResult>& results) {
    auto session = server.createSession(name);
    std::vector<std::future<InferenceResult>> futures;
    for (const auto& in : inputs) {
      futures.push_back(session->infer(in, example));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      results[i] = futures[i].get();
    }
  };
  std::thread threadA(client, "alice", std::cref(inputsA),
                      std::ref(resultsA));
  std::thread threadB(client, "bob", std::cref(inputsB), std::ref(resultsB));
  threadA.join();
  threadB.join();
  server.stop();

  // Ground truth: the same quantized model, driven sequentially unbatched.
  setBackend("native");
  for (int i = 0; i < kPerSession; ++i) {
    EXPECT_EQ(resultsA[static_cast<std::size_t>(i)].values,
              directPredict(server.model(),
                            inputsA[static_cast<std::size_t>(i)], example))
        << "quantized session A request " << i;
    EXPECT_EQ(resultsB[static_cast<std::size_t>(i)].values,
              directPredict(server.model(),
                            inputsB[static_cast<std::size_t>(i)], example))
        << "quantized session B request " << i;
  }
}

TEST(ServingTest, ThreeBackendParity) {
  // One instance per backend (identical layer names -> identical weights);
  // results must agree across backends to float tolerance.
  const auto input = randomInput(4, 7);
  std::vector<std::vector<float>> perBackend;
  for (const char* backend : {"native", "cpu", "webgl"}) {
    setBackend(backend);
    ServerOptions opts;
    opts.backend = backend;
    opts.maxBatch = 2;
    InferenceServer server(makeMlp(), opts);
    auto session = server.createSession();
    perBackend.push_back(session->inferSync(input, Shape{4}).values);
    server.stop();
  }
  ASSERT_EQ(perBackend.size(), 3u);
  for (std::size_t b = 1; b < perBackend.size(); ++b) {
    ASSERT_EQ(perBackend[b].size(), perBackend[0].size());
    for (std::size_t i = 0; i < perBackend[0].size(); ++i) {
      EXPECT_NEAR(perBackend[b][i], perBackend[0][i], 1e-4f)
          << "backend " << b << " index " << i;
    }
  }
  setBackend("native");
}

TEST(ServingTest, MixedShapesBucketSeparately) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 8;
  opts.batchDelayMs = 30;
  InferenceServer server(makeConvNet(), opts);
  auto session = server.createSession();

  const Shape small{6, 6, 3};
  const Shape large{10, 10, 3};
  // Build the model on the small shape first so both shapes flow through
  // the same built weights (conv/GAP/dense are spatial-size agnostic).
  const auto warm = randomInput(small.size(), 500);
  session->inferSync(warm, small);

  std::vector<std::vector<float>> smallIn, largeIn;
  std::vector<std::future<InferenceResult>> smallFut, largeFut;
  for (int i = 0; i < 3; ++i) {
    smallIn.push_back(randomInput(small.size(),
                                  600 + static_cast<std::uint32_t>(i)));
    largeIn.push_back(randomInput(large.size(),
                                  700 + static_cast<std::uint32_t>(i)));
    smallFut.push_back(session->infer(smallIn.back(), small));
    largeFut.push_back(session->infer(largeIn.back(), large));
  }
  std::vector<InferenceResult> smallRes, largeRes;
  for (auto& f : smallFut) smallRes.push_back(f.get());
  for (auto& f : largeFut) largeRes.push_back(f.get());
  server.stop();

  setBackend("native");
  for (std::size_t i = 0; i < smallRes.size(); ++i) {
    // A batch never mixes shapes, so outputs match the per-shape direct run.
    EXPECT_EQ(smallRes[i].values,
              directPredict(server.model(), smallIn[i], small));
    EXPECT_EQ(largeRes[i].values,
              directPredict(server.model(), largeIn[i], large));
    EXPECT_LE(smallRes[i].batchSize, 4);  // at most the 3 smalls + warmup
    EXPECT_LE(largeRes[i].batchSize, 3);
  }
}

TEST(ServingTest, TryInferShedsLoadWhenQueueFull) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 1;
  opts.batchDelayMs = 0;
  opts.queueCapacity = 2;
  InferenceServer server(makeMlp(), opts);
  auto session = server.createSession();

  constexpr int kOffered = 200;
  int accepted = 0, rejected = 0;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < kOffered; ++i) {
    auto fut = session->tryInfer(randomInput(4, 800), Shape{4});
    if (fut) {
      futures.push_back(std::move(*fut));
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // 200 submissions land in microseconds; a capacity-2 queue in front of a
  // real forward pass must shed some of them.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(accepted, 0);
  for (auto& f : futures) f.get();  // everything accepted completes
  server.stop();
  EXPECT_EQ(server.stats().rejected, static_cast<std::uint64_t>(rejected));
  EXPECT_EQ(server.stats().requests, static_cast<std::uint64_t>(accepted));
}

TEST(ServingTest, StopDrainsOutstandingRequestsAndRejectsNew) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 4;
  opts.batchDelayMs = 5;
  InferenceServer server(makeMlp(), opts);
  auto session = server.createSession();

  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(session->infer(randomInput(4, 900), Shape{4}));
  }
  server.stop();  // must serve everything already accepted
  for (auto& f : futures) {
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    f.get();
  }
  EXPECT_THROW(session->infer(randomInput(4, 901), Shape{4}), Error);
}

TEST(ServingTest, CompletionsRouteThroughEventLoop) {
  async::EventLoop loop(60);
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 4;
  opts.batchDelayMs = 1;
  opts.responseLoop = &loop;
  InferenceServer server(makeMlp(), opts);
  auto session = server.createSession();

  // The scheduler thread posts completions into the loop while the main
  // thread runs it — the cross-thread postTask path.
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(session->infer(randomInput(4, 950), Shape{4}));
  }
  loop.run(300);
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(2)),
              std::future_status::ready);
    EXPECT_EQ(f.get().values.size(), 3u);
  }
  server.stop();
}

TEST(ServingTest, MetricsAndStatsPopulated) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 4;
  opts.batchDelayMs = 10;
  InferenceServer server(makeMlp(), opts);
  auto session = server.createSession();
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(session->infer(randomInput(4, 990), Shape{4}));
  }
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_GE(r.totalMs, r.queueMs);
    EXPECT_GE(r.batchSize, 1);
  }
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.requests, 12u);
  EXPECT_GE(stats.batches, 3u);   // 12 requests, maxBatch 4
  EXPECT_LE(stats.batches, 12u);
  EXPECT_GE(stats.meanBatchSize(), 1.0);
  EXPECT_EQ(session->requestsSubmitted(), 12u);

  const auto batchHist =
      metrics::Registry::get().histogram("serving.batch_size").snapshot();
  EXPECT_GE(batchHist.count, stats.batches);
  const auto latHist =
      metrics::Registry::get().histogram("serving.latency_ms").snapshot();
  EXPECT_GT(latHist.count, 0u);
}

TEST(ServingTest, ModelRejectedShapeFailsOnlyThatRequest) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 4;
  opts.batchDelayMs = 1;
  InferenceServer server(makeMlp(), opts);
  auto session = server.createSession();

  // First request builds the MLP for feature width 4.
  EXPECT_EQ(session->inferSync(randomInput(4, 70), Shape{4}).values.size(),
            3u);

  // A 5-wide example passes the length==shape.size() submit check but is
  // rejected by the built model inside predict. Pre-fix, that exception
  // escaped the scheduler's std::thread and std::terminate'd the whole
  // server; now it must surface through this request's future only.
  auto bad = session->infer(randomInput(5, 71), Shape{5});
  EXPECT_THROW(bad.get(), Error);

  // The scheduler survived: other tenants keep being served.
  auto other = server.createSession("bob");
  EXPECT_EQ(other->inferSync(randomInput(4, 72), Shape{4}).values.size(),
            3u);

  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.inFlightAtSnapshot, 0u);
}

TEST(ServingTest, BadBackendFailsRequestsWithoutTerminating) {
  ServerOptions opts;
  opts.backend = "no-such-backend";
  opts.maxBatch = 2;
  InferenceServer server(makeMlp(), opts);
  auto session = server.createSession();
  auto fut = session->infer(randomInput(4, 80), Shape{4});
  EXPECT_THROW(fut.get(), Error);
  server.stop();
  EXPECT_EQ(server.stats().failed, 1u);
  setBackend("native");
}

TEST(ServingTest, ConcurrentStopCallsAreSafe) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = 4;
  opts.batchDelayMs = 1;
  auto server = std::make_unique<InferenceServer>(makeMlp(), opts);
  auto session = server->createSession();
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(session->infer(randomInput(4, 85), Shape{4}));
  }

  // Several explicit stop() calls race each other and then the destructor;
  // exactly one may join the scheduler thread (double-join is UB).
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&server] { server->stop(); });
  }
  for (auto& t : stoppers) t.join();
  for (auto& f : futures) f.get();  // stop() drained everything accepted
  session.reset();                  // sessions must not outlive the server
  server.reset();                   // destructor's stop() is the late caller
}

}  // namespace
}  // namespace tfjs
