// Differential fuzz harness for the graph capture + optimizing executor
// (DESIGN.md "Graph capture & optimization"): seeded random DAGs — mixed
// shapes and ranks, broadcast edges, dense/conv chains, int8-quantized
// weights, folds, fusable patterns — each run eagerly and as a captured,
// fully-optimized graph on every CPU backend (ref / cpu / native). The two
// paths must agree BITWISE: the executor replays through the public ops
// layer and the passes are required to preserve every rounding step, so
// memcmp is the oracle, not a tolerance.
//
// Failures print the case seed; replay one case in isolation with
//   TFJS_GRAPH_FUZZ_SEED=<seed> ./graph_fuzz_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

#include "backends/common/ref_backend.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "graph/capture.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
using graph::CapturedGraph;
using graph::PassOptions;

constexpr unsigned kNumSeeds = 80;  // x3 backends (+ bypass legs) > 240 graphs
/// Seeds for the elementwise-chain-heavy mode (long chains, diamonds,
/// select, mixed broadcast — the fuse_elementwise pass's home turf).
constexpr unsigned kNumElemSeeds = 50;

void ensureRefRegistered() {
  static const bool once = [] {
    Engine::get().registerBackend(
        "ref", [] { return std::make_unique<backends::RefBackend>(); },
        /*priority=*/0);
    return true;
  }();
  (void)once;
}

/// Constant pool shared by the two generator modes. A planning run creates
/// the constants (outside any capture, like real weights); execution runs
/// replay them by cursor. The structural RNG stream is identical in both
/// modes, so the cursor order always lines up.
struct ConstPool {
  std::vector<Tensor> consts;
  std::size_t cursor = 0;
  bool planning = true;
  int dataSeed = 0;

  Tensor take(const Shape& s, bool quantizeInt8 = false) {
    if (planning) {
      Tensor t = o::randomNormal(s, 0, 1, static_cast<std::uint64_t>(dataSeed++));
      if (quantizeInt8) {
        Tensor q = o::quantizePerChannel(t);
        t.dispose();
        t = q;
      }
      t.keep();  // survives the planning scope; owned by the pool
      consts.push_back(t);
      return t;
    }
    return consts[cursor++];
  }

  void disposeAll() {
    for (Tensor& t : consts) t.dispose();
    consts.clear();
  }
};

int pickWhere(std::mt19937& rng, const std::vector<Tensor>& vals,
              const std::function<bool(const Tensor&)>& ok) {
  std::vector<int> idx;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (ok(vals[i])) idx.push_back(static_cast<int>(i));
  }
  if (idx.empty()) return -1;
  return idx[rng() % idx.size()];
}

bool rank2Small(const Tensor& t) {
  return t.shape().rank() == 2 && t.shape().size() <= 1024;
}

/// Builds one random program over `inputs`, drawing structure from `seed`
/// and constants from `pool`. Deterministic: the same seed produces the
/// same op sequence in planning mode, eager mode, and under capture.
std::vector<Tensor> buildProgram(unsigned seed,
                                 const std::vector<Tensor>& inputs,
                                 ConstPool& pool) {
  std::mt19937 rng(seed * 2654435761u + 97u);
  pool.cursor = 0;
  pool.dataSeed = static_cast<int>(seed) * 1000 + 7;

  std::vector<Tensor> vals = inputs;
  const int nSteps = 5 + static_cast<int>(rng() % 6);

  auto any = [](const Tensor&) { return true; };
  auto pushUnary = [&](const Tensor& v) {
    switch (rng() % 10) {
      case 0: vals.push_back(o::relu(v)); break;
      case 1: vals.push_back(o::relu6(v)); break;
      case 2: vals.push_back(o::sigmoid(v)); break;
      case 3: vals.push_back(o::tanh(v)); break;
      case 4: vals.push_back(o::neg(v)); break;
      case 5: vals.push_back(o::abs(v)); break;
      case 6: vals.push_back(o::square(v)); break;
      case 7: vals.push_back(o::softplus(v)); break;
      case 8: vals.push_back(o::addScalar(v, 0.75f)); break;
      default: vals.push_back(o::mulScalar(v, 1.25f)); break;
    }
  };

  for (int step = 0; step < nSteps; ++step) {
    const unsigned kind = rng() % 13;
    switch (kind) {
      case 0: {  // unary chain link
        pushUnary(vals[static_cast<std::size_t>(pickWhere(rng, vals, any))]);
        break;
      }
      case 1: {  // binary with a broadcast edge
        const Tensor& a =
            vals[static_cast<std::size_t>(pickWhere(rng, vals, any))];
        Tensor b;
        const unsigned mode = rng() % 3;
        if (mode == 0) {
          // Same-shape constant operand.
          b = pool.take(a.shape());
        } else if (mode == 1 && a.shape().rank() >= 1) {
          // Broadcast operand: each dim collapses to 1 with p=1/2.
          std::vector<int> dims = a.shape().dims();
          for (int& d : dims) {
            if (rng() % 2 == 0) d = 1;
          }
          b = pool.take(Shape(dims));
        } else {
          b = pool.take(Shape{1});  // vector-vs-anything broadcast
        }
        switch (rng() % 5) {
          case 0: vals.push_back(o::add(a, b)); break;
          case 1: vals.push_back(o::sub(a, b)); break;
          case 2: vals.push_back(o::mul(a, b)); break;
          case 3: vals.push_back(o::maximum(a, b)); break;
          default: vals.push_back(o::minimum(a, b)); break;
        }
        break;
      }
      case 2: {  // binary between two existing same-shape values
        const int ai = pickWhere(rng, vals, any);
        const Tensor& a = vals[static_cast<std::size_t>(ai)];
        const int bi = pickWhere(rng, vals, [&](const Tensor& t) {
          return t.shape() == a.shape();
        });
        if (bi < 0) {
          pushUnary(a);
          break;
        }
        const Tensor& b = vals[static_cast<std::size_t>(bi)];
        vals.push_back(rng() % 2 == 0 ? o::add(a, b) : o::mul(a, b));
        break;
      }
      case 3: {  // dense layer: matMul [+ bias] [+ activation] — fusable
        const int vi = pickWhere(rng, vals, rank2Small);
        if (vi < 0) {
          pushUnary(vals[static_cast<std::size_t>(pickWhere(rng, vals, any))]);
          break;
        }
        const Tensor& v = vals[static_cast<std::size_t>(vi)];
        const int k = v.shape()[1];
        const int n = 2 + static_cast<int>(rng() % 4);
        Tensor w = pool.take(Shape{k, n});
        Tensor h = o::matMul(v, w);
        if (rng() % 2 == 0) {
          Tensor b = pool.take(Shape{n});
          h = o::add(h, b);
        }
        switch (rng() % 4) {
          case 0: h = o::relu(h); break;
          case 1: h = o::relu6(h); break;
          case 2: h = o::sigmoid(h); break;
          default: break;  // no activation
        }
        vals.push_back(h);
        break;
      }
      case 4: {  // dense layer against int8-quantized weights
        const int vi = pickWhere(rng, vals, rank2Small);
        if (vi < 0) {
          pushUnary(vals[static_cast<std::size_t>(pickWhere(rng, vals, any))]);
          break;
        }
        const Tensor& v = vals[static_cast<std::size_t>(vi)];
        const int k = v.shape()[1];
        const int n = 2 + static_cast<int>(rng() % 4);
        Tensor w8 = pool.take(Shape{k, n}, /*quantizeInt8=*/true);
        Tensor h = o::matMul(v, w8);  // routes to the quantized kernel
        if (rng() % 2 == 0) {
          Tensor b = pool.take(Shape{n});
          h = o::add(h, b);
        }
        vals.push_back(h);
        break;
      }
      case 5: {  // reduction
        const int vi = pickWhere(rng, vals, [](const Tensor& t) {
          return t.shape().rank() >= 1;
        });
        if (vi < 0) break;
        const Tensor& v = vals[static_cast<std::size_t>(vi)];
        const bool keep = rng() % 2 == 0;
        std::vector<int> axes;
        if (v.shape().rank() == 2 && rng() % 2 == 0) {
          axes = {static_cast<int>(rng() % 2)};
        }
        switch (rng() % 4) {
          case 0: vals.push_back(o::sum(v, axes, keep)); break;
          case 1: vals.push_back(o::mean(v, axes, keep)); break;
          case 2: vals.push_back(o::max(v, axes, keep)); break;
          default: vals.push_back(o::min(v, axes, keep)); break;
        }
        break;
      }
      case 6: {  // transpose
        const int vi = pickWhere(rng, vals, rank2Small);
        if (vi < 0) break;
        const std::vector<int> perm{1, 0};
        vals.push_back(o::transpose(vals[static_cast<std::size_t>(vi)], perm));
        break;
      }
      case 7: {  // reshape (alias node)
        const int vi = pickWhere(rng, vals, [](const Tensor& t) {
          return t.shape().rank() >= 1 && t.shape().size() >= 1;
        });
        if (vi < 0) break;
        const Tensor& v = vals[static_cast<std::size_t>(vi)];
        const int elems = static_cast<int>(v.shape().size());
        switch (rng() % 3) {
          case 0: vals.push_back(o::reshape(v, Shape{elems})); break;
          case 1: vals.push_back(o::reshape(v, Shape{1, elems})); break;
          default: vals.push_back(o::reshape(v, Shape{elems, 1})); break;
        }
        break;
      }
      case 8: {  // concat (self-concat keeps shapes trivially compatible)
        const int vi = pickWhere(rng, vals, [](const Tensor& t) {
          return t.shape().rank() >= 1 && t.shape().size() <= 512;
        });
        if (vi < 0) break;
        const Tensor& v = vals[static_cast<std::size_t>(vi)];
        const int axis =
            static_cast<int>(rng() % static_cast<unsigned>(v.shape().rank()));
        vals.push_back(o::concat({v, v}, axis));
        break;
      }
      case 9: {  // slice
        const int vi = pickWhere(rng, vals, rank2Small);
        if (vi < 0) break;
        const Tensor& v = vals[static_cast<std::size_t>(vi)];
        std::vector<int> begin(2), size(2);
        for (int d = 0; d < 2; ++d) {
          const int dim = v.shape()[d];
          const int b = static_cast<int>(rng() % static_cast<unsigned>(dim));
          begin[static_cast<std::size_t>(d)] = b;
          size[static_cast<std::size_t>(d)] =
              1 + static_cast<int>(rng() % static_cast<unsigned>(dim - b));
        }
        vals.push_back(o::slice(v, begin, size));
        break;
      }
      case 10: {  // pad + softmax flavor
        const int vi = pickWhere(rng, vals, [](const Tensor& t) {
          return t.shape().rank() == 2 && t.shape().size() <= 512;
        });
        if (vi < 0) break;
        const Tensor& v = vals[static_cast<std::size_t>(vi)];
        if (rng() % 2 == 0) {
          const std::vector<std::pair<int, int>> paddings{
              {static_cast<int>(rng() % 2), static_cast<int>(rng() % 2)},
              {static_cast<int>(rng() % 2), static_cast<int>(rng() % 2)}};
          vals.push_back(o::pad(v, paddings, 0.5f));
        } else {
          vals.push_back(o::softmax(v));
        }
        break;
      }
      case 11: {  // constant subexpression — exercises folding
        Tensor c1 = pool.take(Shape{2, 3});
        Tensor c2 = pool.take(Shape{2, 3});
        vals.push_back(rng() % 2 == 0 ? o::add(c1, c2) : o::mul(c1, c2));
        break;
      }
      default: {  // conv block over an NHWC view (int8 filters sometimes)
        const int vi = pickWhere(rng, vals, [](const Tensor& t) {
          return t.shape().rank() == 2 && t.shape()[0] >= 2 &&
                 t.shape()[1] >= 2 && t.shape().size() <= 256;
        });
        if (vi < 0) break;
        const Tensor& v = vals[static_cast<std::size_t>(vi)];
        const int h = v.shape()[0], w = v.shape()[1];
        Tensor x4 = o::reshape(v, Shape{1, h, w, 1});
        const int oc = 1 + static_cast<int>(rng() % 2);
        const bool int8Filter = rng() % 2 == 0;
        Tensor f = pool.take(Shape{3, 3, 1, oc}, int8Filter);
        Tensor y = o::conv2d(x4, f, 1, 1, PadMode::kSame, 1, 1);
        if (rng() % 2 == 0) y = o::relu(y);
        if (rng() % 2 == 0) y = o::maxPool(y, 2, 2, 2, 2, PadMode::kSame);
        vals.push_back(o::reshape(y, Shape{1, static_cast<int>(y.shape().size())}));
        break;
      }
    }
  }

  // Outputs: the program tail plus sometimes one extra distinct value.
  // Extras never pick a raw input: the eager caller disposes its outputs,
  // and disposing a feed would poison the next backend's run.
  std::vector<Tensor> outs{vals.back()};
  const std::size_t lo = inputs.size();
  if (rng() % 2 == 0 && vals.size() > lo + 1) {
    const std::size_t extra = lo + rng() % (vals.size() - 1 - lo);
    outs.push_back(vals[extra]);
  }
  return outs;
}

/// Elementwise-chain-heavy generator: every value keeps the anchor shape,
/// so the fuser can grow large regions — long unary chains, diamonds whose
/// shared producer must be absorbed, select with comparison conditions, and
/// broadcast constants entering at the leaves. Occasional softmax links are
/// shape-preserving but NOT elementwise: they split regions mid-chain.
std::vector<Tensor> buildElemProgram(unsigned seed,
                                     const std::vector<Tensor>& inputs,
                                     ConstPool& pool) {
  std::mt19937 rng(seed * 1181783497u + 31u);
  pool.cursor = 0;
  pool.dataSeed = static_cast<int>(seed) * 1000 + 503;

  std::vector<Tensor> vals = inputs;
  const Shape shape = inputs[0].shape();
  auto sameShape = [&](const Tensor& t) { return t.shape() == shape; };
  auto pick = [&]() -> const Tensor& {
    return vals[static_cast<std::size_t>(pickWhere(rng, vals, sameShape))];
  };
  auto pushUnary = [&](const Tensor& v) {
    switch (rng() % 8) {
      case 0: vals.push_back(o::relu(v)); break;
      case 1: vals.push_back(o::relu6(v)); break;
      case 2: vals.push_back(o::neg(v)); break;
      case 3: vals.push_back(o::square(v)); break;
      case 4: vals.push_back(o::leakyRelu(v, 0.2f)); break;
      case 5: vals.push_back(o::clipByValue(v, -0.5f, 0.5f)); break;
      case 6: vals.push_back(o::addScalar(v, 0.75f)); break;
      default: vals.push_back(o::mulScalar(v, 1.25f)); break;
    }
  };
  auto pushBinary = [&](const Tensor& a, const Tensor& b) {
    switch (rng() % 5) {
      case 0: vals.push_back(o::add(a, b)); break;
      case 1: vals.push_back(o::sub(a, b)); break;
      case 2: vals.push_back(o::mul(a, b)); break;
      case 3: vals.push_back(o::maximum(a, b)); break;
      default: vals.push_back(o::minimum(a, b)); break;
    }
  };

  const int nSteps = 10 + static_cast<int>(rng() % 16);
  for (int step = 0; step < nSteps; ++step) {
    switch (rng() % 8) {
      case 0:  // chain link
        pushUnary(pick());
        break;
      case 1:  // binary between two existing same-shape values
        pushBinary(pick(), pick());
        break;
      case 2: {  // broadcast constant entering at a leaf
        const Tensor& a = pick();
        std::vector<int> dims = shape.dims();
        for (int& d : dims) {
          if (rng() % 2 == 0) d = 1;
        }
        Tensor b = rng() % 3 == 0 ? pool.take(Shape{1})
                                  : pool.take(Shape(dims));
        pushBinary(a, b);
        break;
      }
      case 3: {  // diamond: shared producer, two consumers, rejoin
        const Tensor v = pick();  // by value: pushUnary may grow vals
        pushUnary(v);
        const Tensor a = vals.back();
        pushUnary(v);
        pushBinary(a, vals.back());
        break;
      }
      case 4: {  // select with a computed condition
        const Tensor& a = pick();
        const Tensor& b = pick();
        Tensor cond = o::greater(a, o::mulScalar(b, 0.5f));
        vals.push_back(o::where(cond, a, b));
        break;
      }
      case 5: {  // comparison feeding boolean arithmetic
        const Tensor& a = pick();
        const Tensor& b = pick();
        vals.push_back(
            o::logicalAnd(o::greater(a, b), o::lessEqual(a, o::abs(b))));
        break;
      }
      case 6: {  // region splitter: shape-preserving, non-elementwise
        if (shape.rank() == 2) {
          vals.push_back(o::softmax(pick()));
        } else {
          pushUnary(pick());
        }
        break;
      }
      default: {  // deep pure chain: several links at once
        pushUnary(pick());
        for (int k = 0; k < 3; ++k) pushUnary(vals.back());
        break;
      }
    }
  }

  // Tail plus sometimes an interior output: an interior that is also an
  // output pins a region boundary (the pass must not absorb it).
  std::vector<Tensor> outs{vals.back()};
  const std::size_t lo = inputs.size();
  if (rng() % 2 == 0 && vals.size() > lo + 1) {
    const std::size_t extra = lo + rng() % (vals.size() - 1 - lo);
    outs.push_back(vals[extra]);
  }
  return outs;
}

::testing::AssertionResult bitwiseEqual(const Tensor& a, const Tensor& b,
                                        unsigned seed, const char* backend,
                                        std::size_t outIdx) {
  const auto av = a.dataSync();
  const auto bv = b.dataSync();
  if (av.size() != bv.size()) {
    return ::testing::AssertionFailure()
           << "seed=" << seed << " backend=" << backend << " output="
           << outIdx << ": size " << av.size() << " vs " << bv.size();
  }
  if (std::memcmp(av.data(), bv.data(), av.size() * sizeof(float)) != 0) {
    std::size_t first = 0;
    while (first < av.size() && av[first] == bv[first]) ++first;
    return ::testing::AssertionFailure()
           << "seed=" << seed << " backend=" << backend << " output="
           << outIdx << ": first mismatch at flat index " << first << " ("
           << av[first] << " vs " << bv[first] << "); replay with "
           << "TFJS_GRAPH_FUZZ_SEED=" << seed;
  }
  return ::testing::AssertionSuccess();
}

using ProgramFn = std::vector<Tensor> (*)(unsigned, const std::vector<Tensor>&,
                                          ConstPool&);

/// Runs one seeded case: eager vs captured+optimized on every CPU backend,
/// plus a pass-bypass leg on a subset. Returns the number of captured
/// graphs executed. `elemMode` switches to the elementwise-chain-heavy
/// generator (same-shape inputs so binaries always pair up).
int runCase(unsigned seed, bool elemMode = false) {
  setBackend("cpu");
  const ProgramFn buildFn = elemMode ? buildElemProgram : buildProgram;
  int graphsRun = 0;

  // Inputs and constants: created once (like an application's weights),
  // shared across backends — the engine migrates containers on demand.
  std::mt19937 shapeRng(seed * 48271u + 11u);
  std::vector<Tensor> inputs;
  const int nIn = elemMode ? 2 : 1 + static_cast<int>(shapeRng() % 2);
  int r0 = 0, c0 = 0;
  if (elemMode) {  // same shape for every input; keeps mode-1 corpus intact
    r0 = 2 + static_cast<int>(shapeRng() % 5);
    c0 = 2 + static_cast<int>(shapeRng() % 6);
  }
  for (int i = 0; i < nIn; ++i) {
    const int r = elemMode ? r0 : 2 + static_cast<int>(shapeRng() % 3);
    const int c = elemMode ? c0 : 2 + static_cast<int>(shapeRng() % 4);
    inputs.push_back(o::randomNormal(Shape{r, c}, 0, 1,
                                     static_cast<std::uint64_t>(seed) * 77 + i));
  }

  ConstPool pool;
  pool.planning = true;
  Engine::get().startScope();
  std::vector<Tensor> planOut = buildFn(seed, inputs, pool);
  (void)planOut;
  Engine::get().endScope({});  // plan intermediates die; consts are kept
  pool.planning = false;

  const std::size_t liveBefore = memory().numTensors;
  for (const char* backend : {"ref", "cpu", "native"}) {
    setBackend(backend);
    std::vector<Tensor> eager = tidyAll([&] {
      return buildFn(seed, inputs, pool);
    });

    CapturedGraph cg(
        graph::capture(
            [&](const std::vector<Tensor>& ins) {
              return buildFn(seed, ins, pool);
            },
            inputs),
        PassOptions::all());
    std::vector<Tensor> got = cg.run(inputs);
    std::vector<Tensor> warm = cg.run(inputs);  // arena-backed second run
    ++graphsRun;

    EXPECT_EQ(eager.size(), got.size()) << "seed=" << seed;
    for (std::size_t i = 0; i < eager.size() && i < got.size(); ++i) {
      EXPECT_TRUE(bitwiseEqual(eager[i], got[i], seed, backend, i));
      EXPECT_TRUE(bitwiseEqual(eager[i], warm[i], seed, backend, i));
    }

    // Pass-bypass leg on a subset: the unoptimized replay must agree too.
    if (seed % 5 == 0) {
      CapturedGraph raw(graph::capture(
                            [&](const std::vector<Tensor>& ins) {
                              return buildFn(seed, ins, pool);
                            },
                            inputs),
                        PassOptions::none());
      std::vector<Tensor> rawOut = raw.run(inputs);
      ++graphsRun;
      for (std::size_t i = 0; i < eager.size() && i < rawOut.size(); ++i) {
        EXPECT_TRUE(bitwiseEqual(eager[i], rawOut[i], seed, backend, i));
      }
      for (Tensor& t : rawOut) t.dispose();
      raw.dispose();
    }

    for (Tensor& t : eager) t.dispose();
    for (Tensor& t : got) t.dispose();
    for (Tensor& t : warm) t.dispose();
    cg.dispose();
  }
  setBackend("cpu");
  // The executor and capture machinery leak nothing across a case.
  EXPECT_EQ(memory().numTensors, liveBefore) << "seed=" << seed;

  pool.disposeAll();
  for (Tensor& t : inputs) t.dispose();
  return graphsRun;
}

TEST(GraphFuzz, EagerVsCapturedBitwiseParity) {
  ensureRefRegistered();

  if (const char* s = std::getenv("TFJS_GRAPH_FUZZ_SEED")) {
    runCase(static_cast<unsigned>(std::atoi(s)));  // single-case replay
    return;
  }

  int graphs = 0;
  for (unsigned seed = 1; seed <= kNumSeeds; ++seed) {
    graphs += runCase(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The harness's own coverage bar: >240 captured graphs per ctest run.
  EXPECT_GE(graphs, 240);
}

TEST(GraphFuzz, ElementwiseChainHeavyBitwiseParity) {
  ensureRefRegistered();

  if (const char* s = std::getenv("TFJS_GRAPH_FUZZ_SEED")) {
    runCase(static_cast<unsigned>(std::atoi(s)), /*elemMode=*/true);
    return;
  }

  const std::uint64_t regions0 =
      metrics::Registry::get().counter("graph.fused_regions").value();
  const std::uint64_t regionOps0 =
      metrics::Registry::get().counter("graph.region_ops").value();
  int graphs = 0;
  for (unsigned seed = 1; seed <= kNumElemSeeds; ++seed) {
    graphs += runCase(seed, /*elemMode=*/true);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GE(graphs, 150);
  // The mode exists to stress the fuser: the corpus must actually form
  // regions, and sizeable ones (several ops per region on average).
  const std::uint64_t regions =
      metrics::Registry::get().counter("graph.fused_regions").value() -
      regions0;
  const std::uint64_t regionOps =
      metrics::Registry::get().counter("graph.region_ops").value() -
      regionOps0;
  EXPECT_GE(regions, 100u);
  EXPECT_GE(regionOps, 3 * regions);
}

}  // namespace
}  // namespace tfjs
