// Tracing + metrics subsystem tests (DESIGN.md "Observability"):
//  * Span/Recorder basics: ring buffer, capacity, drop counting;
//  * spans nest: chunk spans land inside their parallelFor span, on pool
//    worker threads;
//  * metrics survive a backend switch (process-wide registry);
//  * TraceExporter output round-trips through the io::Json parser;
//  * profile()/time() as views over the trace stream, including parity of
//    the per-kernel record list for a MobileNet pass with tracing on vs off;
//  * typed error categories (ShapeError, BackendError);
//  * TimingInfo/ProfileInfo toString / operator<<.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/metrics.h"
#include "core/thread_pool.h"
#include "core/trace.h"
#include "io/json.h"
#include "models/mobilenet.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;

/// Enables the ring recorder for one test and restores a clean state after.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setBackend("native");
    trace::Recorder::get().setCapacity(1 << 16);
    trace::Recorder::get().clear();
    trace::Recorder::get().setEnabled(true);
  }
  void TearDown() override {
    trace::Recorder::get().setEnabled(false);
    trace::Recorder::get().clear();
  }

  static std::vector<trace::Event> eventsNamed(
      const std::vector<trace::Event>& events, const std::string& name) {
    std::vector<trace::Event> out;
    for (const auto& e : events) {
      if (e.name == name) out.push_back(e);
    }
    return out;
  }
};

// ------------------------------------------------------------ recorder

TEST_F(TraceTest, GateIsOffWhenNoConsumer) {
  trace::Recorder::get().setEnabled(false);
  EXPECT_FALSE(trace::active());
  trace::Recorder::get().setEnabled(true);
  EXPECT_TRUE(trace::active());
}

TEST_F(TraceTest, SpanRecordsDurationAndThreadId) {
  { trace::Span s("api", "unit-test-span"); }
  auto spans = eventsNamed(trace::Recorder::get().snapshot(),
                           "unit-test-span");
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].type, trace::Event::Type::kSpan);
  EXPECT_STREQ(spans[0].category, "api");
  EXPECT_GE(spans[0].durUs, 0.0);
  EXPECT_GE(spans[0].tsUs, 0.0);
}

TEST_F(TraceTest, RingDropsOldestWhenFull) {
  trace::Recorder::get().setCapacity(8);
  for (int i = 0; i < 20; ++i) {
    trace::instant("api", "instant-" + std::to_string(i));
  }
  auto events = trace::Recorder::get().snapshot();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(trace::Recorder::get().dropped(), 12u);
  // Oldest-first order, holding the most recent events.
  EXPECT_EQ(events.front().name, "instant-12");
  EXPECT_EQ(events.back().name, "instant-19");
}

TEST_F(TraceTest, InertWhenDisabled) {
  trace::Recorder::get().setEnabled(false);
  {
    trace::Span s("api", "ghost");
    EXPECT_FALSE(s.live());
    EXPECT_EQ(s.mutableEvent(), nullptr);
  }
  trace::instant("api", "ghost");
  trace::Recorder::get().setEnabled(true);
  EXPECT_TRUE(trace::Recorder::get().snapshot().empty());
}

// ------------------------------------------------- spans nest / threads

TEST_F(TraceTest, ChunkSpansNestUnderParallelForSpan) {
  const int prevThreads = core::ThreadPool::get().numThreads();
  core::ThreadPool::get().setNumThreads(4);
  core::ThreadPool::get().parallelFor(400, 100, [](std::size_t, std::size_t) {
    volatile double sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
    (void)sink;
  });
  core::ThreadPool::get().setNumThreads(prevThreads);

  auto events = trace::Recorder::get().snapshot();
  auto jobs = eventsNamed(events, "parallelFor");
  auto chunks = eventsNamed(events, "chunk");
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_EQ(chunks.size(), 4u);
  const trace::Event& job = jobs[0];
  EXPECT_STREQ(job.category, "pool");
  std::set<int> tids;
  for (const auto& c : chunks) {
    EXPECT_STREQ(c.category, "pool");
    // Every chunk span lies inside the enclosing parallelFor span.
    EXPECT_GE(c.tsUs, job.tsUs);
    EXPECT_LE(c.tsUs + c.durUs, job.tsUs + job.durUs + 1.0 /*rounding*/);
    tids.insert(c.tid);
  }
  // With 4 threads and 4 chunks, at least the caller ran chunks; typically
  // workers did too. Thread ids must be valid dense ids either way.
  for (int tid : tids) EXPECT_GE(tid, 0);
  EXPECT_GE(tids.size(), 1u);
}

TEST_F(TraceTest, OpSpanWrapsKernelSpan) {
  Tensor a = o::randomNormal(Shape{64, 64}, 0, 1, 7);
  Tensor b = o::matMul(a, a);
  b.dataSync();
  auto events = trace::Recorder::get().snapshot();
  auto opSpans = eventsNamed(events, "matMul");
  auto kernelSpans = eventsNamed(events, "native.matMul");
  ASSERT_GE(opSpans.size(), 1u);
  ASSERT_GE(kernelSpans.size(), 1u);
  const trace::Event& op = opSpans.back();
  const trace::Event& kernel = kernelSpans.back();
  EXPECT_STREQ(op.category, "op");
  EXPECT_STREQ(kernel.category, "kernel");
  // The backend kernel executed inside the op-level span.
  EXPECT_GE(kernel.tsUs + 1.0, op.tsUs);
  EXPECT_LE(kernel.tsUs + kernel.durUs, op.tsUs + op.durUs + 1.0);
  // Op events carry kernel metadata.
  EXPECT_EQ(op.shape.toString(), Shape({64, 64}).toString());
  EXPECT_EQ(op.bytes, 64u * 64u * 4u);
  EXPECT_EQ(op.backend, "native");
  EXPECT_GE(op.threads, 1);
  a.dispose();
  b.dispose();
}

// ----------------------------------------------------------- metrics

TEST_F(TraceTest, MetricsSurviveBackendSwitch) {
  metrics::Counter& dispatched =
      metrics::Registry::get().counter("engine.kernels_dispatched");
  const std::uint64_t before = dispatched.value();

  setBackend("cpu");
  Tensor a = o::tensor({1, 2, 3, 4}, Shape{4});
  Tensor b = o::addScalar(a, 1);
  const std::uint64_t afterCpu = dispatched.value();
  EXPECT_GT(afterCpu, before);

  setBackend("native");
  Tensor c = o::addScalar(b, 1);
  EXPECT_GT(dispatched.value(), afterCpu);

  a.dispose();
  b.dispose();
  c.dispose();
}

TEST_F(TraceTest, BytesUploadedAndDownloadedCount) {
  metrics::Counter& up =
      metrics::Registry::get().counter("backend.bytes_uploaded");
  metrics::Counter& down =
      metrics::Registry::get().counter("backend.bytes_downloaded");
  const std::uint64_t up0 = up.value();
  const std::uint64_t down0 = down.value();
  Tensor a = o::tensor({1, 2, 3, 4, 5, 6}, Shape{6});
  EXPECT_GE(up.value(), up0 + 6 * 4);
  a.dataSync();
  EXPECT_GE(down.value(), down0 + 6 * 4);
  a.dispose();
}

TEST_F(TraceTest, HistogramBucketsAndMean) {
  metrics::Histogram& h =
      metrics::Registry::get().histogram("test.trace_hist");
  h.reset();
  h.observe(0.0005);  // below first bound
  h.observe(1.0);
  h.observe(3.0);
  metrics::Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.sum, 4.0005, 1e-9);
  EXPECT_NEAR(s.mean(), 4.0005 / 3, 1e-9);
  std::size_t total = 0;
  for (std::uint64_t b : s.buckets) total += b;
  EXPECT_EQ(total, 3u);
}

TEST_F(TraceTest, RegistryJsonParses) {
  metrics::Registry::get().counter("test.json_counter").inc(3);
  metrics::Registry::get().gauge("test.json_gauge").set(-7);
  metrics::Registry::get().histogram("test.json_hist").observe(0.5);
  io::Json doc = io::Json::parse(metrics::Registry::get().toJsonString());
  EXPECT_EQ(doc.at("counters").at("test.json_counter").asDouble(), 3.0);
  EXPECT_EQ(doc.at("gauges").at("test.json_gauge").asDouble(), -7.0);
  EXPECT_EQ(doc.at("histograms").at("test.json_hist").at("count").asDouble(),
            1.0);
}

// ------------------------------------------------------------- export

TEST_F(TraceTest, ExportRoundTripsThroughJsonParser) {
  Tensor a = o::randomNormal(Shape{32, 32}, 0, 1, 3);
  Tensor b = o::relu(o::matMul(a, a));
  b.dataSync();
  trace::counter("test.export_counter", 42);
  trace::instant("api", "export \"quoted\"\nname");  // exercises escaping

  const std::string json =
      trace::TraceExporter::toJson(trace::Recorder::get().snapshot());
  io::Json doc = io::Json::parse(json);  // throws on malformed output

  ASSERT_TRUE(doc.has("traceEvents"));
  const io::JsonArray& events = doc.at("traceEvents").asArray();
  EXPECT_GE(events.size(), 4u);
  bool sawMatMul = false, sawCounter = false, sawInstant = false;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").asString();
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C");
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("tid"));
    if (e.at("name").asString() == "matMul" && ph == "X") {
      sawMatMul = true;
      EXPECT_EQ(e.at("cat").asString(), "op");
      EXPECT_TRUE(e.has("dur"));
      EXPECT_EQ(e.at("args").at("shape").asString(), "[32,32]");
      EXPECT_EQ(e.at("args").at("bytes").asDouble(), 32 * 32 * 4);
      EXPECT_EQ(e.at("args").at("backend").asString(), "native");
    }
    if (e.at("name").asString() == "test.export_counter") {
      sawCounter = true;
      EXPECT_EQ(ph, "C");
      // Chrome's counter convention: args maps the series name to the value.
      EXPECT_EQ(e.at("args").at("test.export_counter").asDouble(), 42.0);
    }
    if (ph == "i" && e.at("name").asString().find("quoted") !=
                         std::string::npos) {
      sawInstant = true;
    }
  }
  EXPECT_TRUE(sawMatMul);
  EXPECT_TRUE(sawCounter);
  EXPECT_TRUE(sawInstant);
  // otherData embeds the metrics registry + drop count.
  EXPECT_TRUE(doc.at("otherData").has("metrics"));
  EXPECT_TRUE(doc.at("otherData").has("dropped"));
  a.dispose();
  b.dispose();
}

TEST_F(TraceTest, ExportWritesLoadableFile) {
  Tensor a = o::tensor({1, 2}, Shape{2});
  Tensor b = o::addScalar(a, 1);
  b.dataSync();
  const std::string path = ::testing::TempDir() + "tfjs_trace_test.json";
  ASSERT_TRUE(trace::TraceExporter::writeFile(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  io::Json doc = io::Json::parse(buf.str());
  EXPECT_GE(doc.at("traceEvents").asArray().size(), 1u);
  a.dispose();
  b.dispose();
}

// ----------------------------------------- time / profile as trace views

TEST_F(TraceTest, ScopeObservesEventsWithoutRing) {
  trace::Recorder::get().setEnabled(false);  // ring off; Scope alone gates
  Tensor a = o::tensor({1, 2, 3, 4}, Shape{2, 2});
  std::vector<trace::Event> seen;
  {
    instrumentation::Scope scope("unit");
    EXPECT_TRUE(trace::active());
    Tensor b = o::addScalar(a, 1);
    b.dispose();
    seen = scope.events();
  }
  EXPECT_FALSE(trace::active());
  bool sawAdd = false;
  for (const auto& e : seen) sawAdd |= (e.name == "add");
  EXPECT_TRUE(sawAdd);
  // The ring stayed empty: the Scope was the only consumer.
  EXPECT_TRUE(trace::Recorder::get().snapshot().empty());
  a.dispose();
}

TEST_F(TraceTest, ProfileRecordsStartAndWallTimes) {
  Tensor a = o::randomNormal(Shape{64, 64}, 0, 1, 9);
  ProfileInfo info = profile([&] {
    tidyVoid([&] {
      Tensor h = o::relu(o::matMul(a, a));
      h.dataSync();
    });
  });
  ASSERT_GE(info.kernels.size(), 2u);
  EXPECT_GT(info.wallMs, 0.0);
  double prevStart = -1;
  for (const auto& k : info.kernels) {
    EXPECT_GE(k.startMs, 0.0);
    EXPECT_GE(k.startMs, prevStart);  // records come out in time order
    prevStart = k.startMs;
    EXPECT_GE(k.wallMs, 0.0);
    EXPECT_LE(k.startMs, info.wallMs + 1.0);
    EXPECT_EQ(k.backend, "native");
    EXPECT_GE(k.threads, 1);
  }
  a.dispose();
}

TEST_F(TraceTest, ProfileKernelListMatchesMobileNetPassWithTracingOff) {
  // profile() must report the same kernel sequence whether or not the ring
  // recorder is running — it is a view over the same stream the ring sees.
  models::MobileNetOptions opts;
  opts.alpha = 0.25f;
  opts.inputSize = 64;
  opts.numClasses = 10;
  auto model = models::buildMobileNetV1(opts);
  Tensor x = o::randomNormal(Shape{1, opts.inputSize, opts.inputSize, 3},
                             0, 1, 11);

  auto run = [&] {
    tidyVoid([&] {
      Tensor y = model->predict(x);
      y.dataSync();
    });
  };
  run();  // warm-up: builds the model outside the measured passes

  trace::Recorder::get().setEnabled(false);
  ProfileInfo off = profile(run);
  trace::Recorder::get().clear();
  trace::Recorder::get().setEnabled(true);
  ProfileInfo on = profile(run);

  ASSERT_GT(off.kernels.size(), 20u);  // a real multi-layer pass
  ASSERT_EQ(off.kernels.size(), on.kernels.size());
  for (std::size_t i = 0; i < off.kernels.size(); ++i) {
    EXPECT_EQ(off.kernels[i].name, on.kernels[i].name) << "at kernel " << i;
    EXPECT_EQ(off.kernels[i].outputShape.toString(),
              on.kernels[i].outputShape.toString());
  }

  // With the ring on, every dispatched kernel produced >= 1 "op" span.
  auto events = trace::Recorder::get().snapshot();
  std::size_t opSpans = 0;
  for (const auto& e : events) {
    if (e.type == trace::Event::Type::kSpan &&
        std::string_view(e.category) == "op") {
      ++opSpans;
    }
  }
  EXPECT_GE(opSpans, on.kernels.size());
  x.dispose();
}

TEST_F(TraceTest, TimeMatchesSeedSemantics) {
  Tensor a = o::randomNormal(Shape{64, 64}, 0, 1, 5);
  TimingInfo t = time([&] {
    Tensor b = o::matMul(a, a);
    b.dataSync();
    b.dispose();
  });
  EXPECT_GT(t.wallMs, 0.0);
  EXPECT_GT(t.kernelMs, 0.0);
  EXPECT_GE(t.wallMs + 0.5, t.kernelMs);  // kernel time is within the wall
  a.dispose();
}

// ----------------------------------------------------- error categories

TEST_F(TraceTest, ShapeErrorIsAnInvalidArgumentError) {
  Tensor a = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  Tensor b = o::tensor({1, 2, 3, 4}, Shape{2, 2});
  EXPECT_THROW(o::matMul(a, b), ShapeError);
  try {
    o::matMul(a, b);
    FAIL() << "expected ShapeError";
  } catch (const InvalidArgumentError& e) {
    // Callers that only know the seed hierarchy keep working.
    EXPECT_NE(std::string(e.what()).find("matMul"), std::string::npos);
  }
  a.dispose();
  b.dispose();
}

TEST_F(TraceTest, BackendErrorOnUnknownDataId) {
  EXPECT_THROW(Engine::get().backend().read(static_cast<DataId>(999999)),
               BackendError);
}

// ----------------------------------------------------------- toString

TEST_F(TraceTest, TimingInfoToString) {
  TimingInfo t;
  t.wallMs = 12.5;
  t.kernelMs = 3.25;
  const std::string s = t.toString();
  EXPECT_NE(s.find("12.5"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), s);
}

TEST_F(TraceTest, ProfileInfoToStringListsKernels) {
  Tensor a = o::tensor({1, 2, 3, 4}, Shape{2, 2});
  ProfileInfo info = profile([&] {
    Tensor b = o::addScalar(a, 1);
    b.dispose();
  });
  const std::string s = info.toString();
  EXPECT_NE(s.find("add"), std::string::npos);
  EXPECT_NE(s.find("kernels"), std::string::npos);
  std::ostringstream os;
  os << info;
  EXPECT_EQ(os.str(), s);
  a.dispose();
}

}  // namespace
}  // namespace tfjs
