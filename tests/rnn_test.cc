// Recurrent-layer tests: cell math against hand-computed values, shape
// contracts, BPTT training on a synthetic sequence task (the eager-autodiff
// payoff of paper section 3.5 — native loops, gradients for free), and
// config round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "core/random.h"
#include "layers/core_layers.h"
#include "layers/rnn_layers.h"
#include "layers/sequential.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
namespace L = layers;

class RnnTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("native"); }
};

TEST_F(RnnTest, SimpleRnnHandComputed) {
  L::RNNOptions opts;
  opts.units = 1;
  opts.activation = "tanh";
  opts.name = "rnn_hand";
  L::SimpleRNN rnn(opts);
  // x: one batch, two steps, one feature: [1, 2]; W=1, U=0.5, b=0.
  Tensor x = o::tensor({1, 2}, Shape{1, 2, 1});
  rnn.build(x.shape());
  Tensor w = o::tensor({1.f}, Shape{1, 1});
  Tensor u = o::tensor({0.5f}, Shape{1, 1});
  Tensor b = o::tensor({0.f}, Shape{1});
  rnn.setWeightValues(std::array<Tensor, 3>{w, u, b});
  Tensor y = rnn.apply(x);
  // h1 = tanh(1) ; h2 = tanh(2 + 0.5*h1)
  const float h1 = std::tanh(1.0f);
  const float h2 = std::tanh(2.0f + 0.5f * h1);
  test::expectValues(y, {h2}, 1e-5f);
  for (Tensor t : {x, y}) t.dispose();
  rnn.dispose();
}

TEST_F(RnnTest, ReturnSequencesShape) {
  // Both instances share a name so their seeded weights are identical.
  for (auto make : {std::function<L::LayerPtr(bool)>([](bool seq) {
         L::RNNOptions o;
         o.units = 3;
         o.returnSequences = seq;
         o.name = "shape_simple";
         return std::make_shared<L::SimpleRNN>(o);
       }),
       std::function<L::LayerPtr(bool)>([](bool seq) {
         L::RNNOptions o;
         o.units = 3;
         o.returnSequences = seq;
         o.name = "shape_gru";
         return std::make_shared<L::GRU>(o);
       }),
       std::function<L::LayerPtr(bool)>([](bool seq) {
         L::RNNOptions o;
         o.units = 3;
         o.returnSequences = seq;
         o.name = "shape_lstm";
         return std::make_shared<L::LSTM>(o);
       })}) {
    Tensor x = o::randomNormal(Shape{2, 5, 4}, 0, 1, 1);
    auto last = make(false);
    auto seq = make(true);
    Tensor yLast = last->apply(x);
    Tensor ySeq = seq->apply(x);
    test::expectShape(yLast, Shape{2, 3});
    test::expectShape(ySeq, Shape{2, 5, 3});
    // Final sequence step equals the non-sequence output.
    Tensor lastStep = o::slice(ySeq, std::array<int, 3>{0, 4, 0},
                               std::array<int, 3>{2, 1, 3});
    test::expectClose(lastStep.reshape(Shape{2, 3}), yLast, 1e-5f);
    for (Tensor t : {x, yLast, ySeq, lastStep}) t.dispose();
    last->dispose();
    seq->dispose();
  }
}

TEST_F(RnnTest, LstmForgetBiasInitializedToOne) {
  L::RNNOptions opts;
  opts.units = 2;
  opts.name = "lstm_bias_check";
  L::LSTM lstm(opts);
  lstm.build(Shape{1, 3, 4});
  // weights: kernel, recurrent, bias; bias layout [i f g o] x units.
  const auto bias = lstm.weights()[2].value().dataSync();
  ASSERT_EQ(bias.size(), 8u);
  EXPECT_FLOAT_EQ(bias[2], 1);  // forget block
  EXPECT_FLOAT_EQ(bias[3], 1);
  EXPECT_FLOAT_EQ(bias[0], 0);  // input block
  EXPECT_FLOAT_EQ(bias[6], 0);  // output block
  lstm.dispose();
}

TEST_F(RnnTest, GruStaysBoundedOnLongSequence) {
  L::RNNOptions opts;
  opts.units = 4;
  L::GRU gru(opts);
  Tensor x = o::randomNormal(Shape{1, 50, 2}, 0, 3, 2);
  Tensor y = gru.apply(x);
  for (float v : y.dataSync()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_LE(std::fabs(v), 1.0f + 1e-5f);  // tanh-bounded state
  }
  x.dispose();
  y.dispose();
  gru.dispose();
}

/// Synthetic sequence task: label = whether the sum of the sequence is
/// positive. Linearly separable for a recurrent accumulator.
std::pair<Tensor, Tensor> makeSequenceData(int n, int steps,
                                           std::uint64_t seed) {
  tfjs::Random rng(seed);
  std::vector<float> xs(static_cast<std::size_t>(n) * steps);
  std::vector<float> ys(static_cast<std::size_t>(n) * 2, 0.f);
  for (int i = 0; i < n; ++i) {
    float sum = 0;
    for (int t = 0; t < steps; ++t) {
      const float v = rng.uniform(-1, 1);
      xs[static_cast<std::size_t>(i) * steps + t] = v;
      sum += v;
    }
    ys[static_cast<std::size_t>(i) * 2 + (sum > 0 ? 1 : 0)] = 1.f;
  }
  return {o::tensor(xs, Shape{n, steps, 1}), o::tensor(ys, Shape{n, 2})};
}

using RnnKind = const char*;
class RnnTrainingTest : public ::testing::TestWithParam<RnnKind> {
 protected:
  void SetUp() override { setBackend("native"); }
};

TEST_P(RnnTrainingTest, LearnsSequenceSumSign) {
  auto [x, y] = makeSequenceData(128, 6, 5);
  auto model = sequential(std::string("rnn_train_") + GetParam());
  L::RNNOptions r;
  r.units = 8;
  if (std::string(GetParam()) == "simple") {
    model->add(std::make_shared<L::SimpleRNN>(r));
  } else if (std::string(GetParam()) == "gru") {
    model->add(std::make_shared<L::GRU>(r));
  } else {
    model->add(std::make_shared<L::LSTM>(r));
  }
  L::DenseOptions d;
  d.units = 2;
  d.activation = "softmax";
  model->add(std::make_shared<L::Dense>(d));
  L::CompileOptions c;
  c.optimizer = "adam";
  c.learningRate = 0.02f;
  c.loss = "categoricalCrossentropy";
  c.metrics = {"accuracy"};
  model->compile(c);
  L::FitOptions fit;
  fit.epochs = 10;
  fit.batchSize = 32;
  L::History h = model->fit(x, y, fit);
  EXPECT_GT(h.metrics[0].back(), 0.85f)
      << GetParam() << " failed to learn (BPTT broken?)";
  EXPECT_LT(h.loss.back(), h.loss.front());
  x.dispose();
  y.dispose();
  model->dispose();
}

INSTANTIATE_TEST_SUITE_P(Cells, RnnTrainingTest,
                         ::testing::Values("simple", "gru", "lstm"),
                         [](const auto& info) { return info.param; });

TEST_F(RnnTest, EmbeddingLookup) {
  L::Embedding emb(5, 3, "emb_test");
  Tensor idx = o::tensor({0, 2, 4, 2}, Shape{2, 2}, DType::i32);
  Tensor y = emb.apply(idx);
  test::expectShape(y, Shape{2, 2, 3});
  // Same index -> same row.
  const auto v = y.dataSync();
  for (int d = 0; d < 3; ++d) {
    EXPECT_FLOAT_EQ(v[1 * 3 + d], v[3 * 3 + d]);  // both are token 2
  }
  idx.dispose();
  y.dispose();
  emb.dispose();
}

TEST_F(RnnTest, RnnConfigRoundTrip) {
  auto model = sequential("rnn_roundtrip");
  L::RNNOptions r;
  r.units = 4;
  r.returnSequences = true;
  model->add(std::make_shared<L::GRU>(r));
  L::RNNOptions r2;
  r2.units = 2;
  model->add(std::make_shared<L::LSTM>(r2));
  const io::Json cfg = model->toConfig();
  auto clone = L::Sequential::fromConfig(cfg);
  EXPECT_EQ(clone->toConfig().dump(), cfg.dump());
  Tensor x = o::randomNormal(Shape{1, 3, 5}, 0, 1, 6);
  Tensor y = clone->predict(x);
  test::expectShape(y, Shape{1, 2});
  x.dispose();
  y.dispose();
  model->dispose();
  clone->dispose();
}

}  // namespace
}  // namespace tfjs
