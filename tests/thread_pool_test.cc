// ThreadPool unit tests: fixed-partition coverage, exception propagation,
// nested-call inlining, the single-threaded fallback, env parsing, and the
// profiler's parallelism hook.
#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "ops/ops.h"

using tfjs::core::ThreadPool;

namespace {

/// Restores the pool's thread count when a test exits.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ThreadPool::get().numThreads()) {}
  ~ThreadCountGuard() { ThreadPool::get().setNumThreads(saved_); }

 private:
  int saved_;
};

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  ThreadPool::get().setNumThreads(4);
  // Odd n that does not divide the grain: last chunk is ragged.
  const std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  ThreadPool::get().parallelFor(n, 64, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(e, n);
    ASSERT_LT(b, e);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ChunkBoundariesAreFixedByGrain) {
  ThreadCountGuard guard;
  for (int threads : {1, 3}) {
    ThreadPool::get().setNumThreads(threads);
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    std::mutex mu;
    ThreadPool::get().parallelFor(103, 10, [&](std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lk(mu);
      chunks.insert({b, e});
    });
    // Partition depends only on (n, grain), never on the thread count.
    std::set<std::pair<std::size_t, std::size_t>> expected;
    for (std::size_t b = 0; b < 103; b += 10) {
      expected.insert({b, std::min<std::size_t>(b + 10, 103)});
    }
    EXPECT_EQ(chunks, expected) << "threads=" << threads;
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    ThreadPool::get().setNumThreads(threads);
    EXPECT_THROW(
        ThreadPool::get().parallelFor(100, 10,
                                      [&](std::size_t b, std::size_t) {
                                        if (b == 50) {
                                          throw std::runtime_error("boom");
                                        }
                                      }),
        std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int> ran{0};
    ThreadPool::get().parallelFor(
        8, 1, [&](std::size_t, std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadCountGuard guard;
  ThreadPool::get().setNumThreads(4);
  std::atomic<int> innerTotal{0};
  std::atomic<int> inlineViolations{0};
  ThreadPool::get().parallelFor(8, 1, [&](std::size_t, std::size_t) {
    const auto outerThread = std::this_thread::get_id();
    ThreadPool::get().parallelFor(16, 4, [&](std::size_t b, std::size_t e) {
      innerTotal.fetch_add(static_cast<int>(e - b));
      if (std::this_thread::get_id() != outerThread) {
        inlineViolations.fetch_add(1);
      }
    });
  });
  EXPECT_EQ(innerTotal.load(), 8 * 16);
  EXPECT_EQ(inlineViolations.load(), 0);
}

TEST(ThreadPool, SingleThreadedModeRunsOnCaller) {
  ThreadCountGuard guard;
  ThreadPool::get().setNumThreads(1);
  ThreadPool::get().takeLastParallelism();  // clear earlier tests' watermark
  const auto caller = std::this_thread::get_id();
  std::atomic<int> offThread{0};
  ThreadPool::get().parallelFor(1000, 7, [&](std::size_t, std::size_t) {
    if (std::this_thread::get_id() != caller) offThread.fetch_add(1);
  });
  EXPECT_EQ(offThread.load(), 0);
  EXPECT_EQ(ThreadPool::get().takeLastParallelism(), 1);
}

TEST(ThreadPool, ThreadsFromEnvParsing) {
  EXPECT_EQ(ThreadPool::threadsFromEnv(nullptr, 8), 8);
  EXPECT_EQ(ThreadPool::threadsFromEnv("", 8), 8);
  EXPECT_EQ(ThreadPool::threadsFromEnv("4", 8), 4);
  EXPECT_EQ(ThreadPool::threadsFromEnv("1", 8), 1);
  EXPECT_EQ(ThreadPool::threadsFromEnv("0", 8), 8);
  EXPECT_EQ(ThreadPool::threadsFromEnv("-2", 8), 8);
  EXPECT_EQ(ThreadPool::threadsFromEnv("abc", 8), 8);
  EXPECT_EQ(ThreadPool::threadsFromEnv("4x", 8), 8);
  EXPECT_EQ(ThreadPool::threadsFromEnv("99999", 8), 1024);
}

TEST(ThreadPool, ParallelismIsBoundedAndTaken) {
  ThreadCountGuard guard;
  ThreadPool::get().setNumThreads(4);
  ThreadPool::get().takeLastParallelism();  // reset
  ThreadPool::get().parallelFor(64, 1, [](std::size_t, std::size_t) {});
  const int p = ThreadPool::get().takeLastParallelism();
  EXPECT_GE(p, 1);
  EXPECT_LE(p, 4);
  // take() resets the watermark.
  EXPECT_EQ(ThreadPool::get().takeLastParallelism(), 1);
}

TEST(ThreadPool, EngineConfigForwardsToPool) {
  ThreadCountGuard guard;
  tfjs::setNumThreads(3);
  EXPECT_EQ(tfjs::getNumThreads(), 3);
  EXPECT_EQ(ThreadPool::get().numThreads(), 3);
  tfjs::setNumThreads(0);  // clamps to 1
  EXPECT_EQ(tfjs::getNumThreads(), 1);
}

TEST(ThreadPool, ProfileReportsKernelThreadCounts) {
  ThreadCountGuard guard;
  tfjs::setNumThreads(4);
  tfjs::setBackend("native");
  namespace o = tfjs::ops;
  tfjs::Tensor a = o::randomNormal(tfjs::Shape{512, 512}, 0, 1, 1);
  tfjs::Tensor b = o::randomNormal(tfjs::Shape{512, 512}, 0, 1, 2);
  tfjs::ProfileInfo info = tfjs::profile([&] {
    tfjs::tidyVoid([&] {
      tfjs::Tensor c = o::matMul(a, b);
      c.dataSync();
    });
  });
  ASSERT_FALSE(info.kernels.empty());
  bool sawMatMul = false;
  for (const auto& k : info.kernels) {
    EXPECT_GE(k.threads, 1);
    EXPECT_LE(k.threads, 4);
    if (k.name == "matMul") sawMatMul = true;
  }
  EXPECT_TRUE(sawMatMul);
  a.dispose();
  b.dispose();
}

}  // namespace
