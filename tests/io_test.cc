// IO tests (paper section 5.1): JSON round trips, weight quantization (4x
// size reduction, bounded error), 4 MB sharding (E11), model save/load
// round trips, and the converter's training-op pruning.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/engine.h"
#include "io/converter.h"
#include "io/model_io.h"
#include "layers/core_layers.h"
#include "models/mobilenet.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
namespace L = layers;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("native"); }
};

// ------------------------------------------------------------------- JSON

TEST_F(IoTest, JsonParseAndDumpRoundTrip) {
  const std::string text =
      R"({"a": 1, "b": [true, null, "x\ny"], "c": {"d": 2.5, "e": -3}})";
  io::Json j = io::Json::parse(text);
  EXPECT_EQ(j.at("a").asInt(), 1);
  EXPECT_TRUE(j.at("b").asArray()[0].asBool());
  EXPECT_TRUE(j.at("b").asArray()[1].isNull());
  EXPECT_EQ(j.at("b").asArray()[2].asString(), "x\ny");
  EXPECT_DOUBLE_EQ(j.at("c").at("d").asDouble(), 2.5);
  EXPECT_EQ(j.at("c").at("e").asInt(), -3);
  // dump -> parse -> dump is a fixed point.
  const std::string d1 = j.dump();
  EXPECT_EQ(io::Json::parse(d1).dump(), d1);
}

TEST_F(IoTest, JsonErrors) {
  EXPECT_THROW(io::Json::parse("{"), InvalidArgumentError);
  EXPECT_THROW(io::Json::parse("[1,]2"), InvalidArgumentError);
  EXPECT_THROW(io::Json::parse("{\"a\" 1}"), InvalidArgumentError);
  EXPECT_THROW(io::Json::parse("nulll"), InvalidArgumentError);
  io::Json j = io::Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.at("missing"), InvalidArgumentError);
  EXPECT_THROW(j.at("a").asString(), InvalidArgumentError);
}

TEST_F(IoTest, JsonPrettyPrint) {
  io::Json j;
  j["k"] = io::Json(io::JsonArray{io::Json(1), io::Json(2)});
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find("\n"), std::string::npos);
  EXPECT_EQ(io::Json::parse(pretty).dump(), j.dump());
}

// ---------------------------------------------------------------- weights

TEST_F(IoTest, WeightsRoundTripFloat32) {
  Tensor a = o::randomNormal(Shape{17, 3}, 0, 2, 1);
  Tensor b = o::range(0, 10);
  std::vector<std::pair<std::string, Tensor>> named = {{"w/a", a}, {"w/b", b}};
  io::WeightsManifest m = io::encodeWeights(named);
  EXPECT_EQ(m.totalBytes(), (17 * 3 + 10) * 4u);
  auto decoded = io::decodeWeights(m);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].first, "w/a");
  test::expectClose(decoded[0].second, a, 0);
  test::expectClose(decoded[1].second, b, 0);
  for (auto& [n, t] : decoded) t.dispose();
  a.dispose();
  b.dispose();
}

TEST_F(IoTest, QuantizationUint8Reduces4xWithBoundedError) {
  Tensor w = o::randomUniform(Shape{1000}, -2, 2, 3);
  std::vector<std::pair<std::string, Tensor>> named = {{"w", w}};
  io::WeightsManifest full = io::encodeWeights(named);
  io::WeightsManifest q8 =
      io::encodeWeights(named, io::Quantization::kUint8);
  // The paper's claim: "quantize the weights, reducing the model size by 4X".
  EXPECT_EQ(full.totalBytes(), 4 * q8.totalBytes());

  auto decoded = io::decodeWeights(q8);
  const auto orig = w.dataSync();
  const auto got = decoded[0].second.dataSync();
  const float maxError = 4.0f / 255 / 2 + 1e-4f;  // half a quantization step
  for (std::size_t i = 0; i < orig.size(); ++i) {
    EXPECT_NEAR(got[i], orig[i], maxError);
  }
  decoded[0].second.dispose();
  w.dispose();
}

TEST_F(IoTest, QuantizationUint16HalvesWithTighterError) {
  Tensor w = o::randomUniform(Shape{512}, -1, 1, 4);
  std::vector<std::pair<std::string, Tensor>> named = {{"w", w}};
  io::WeightsManifest q16 =
      io::encodeWeights(named, io::Quantization::kUint16);
  EXPECT_EQ(q16.totalBytes(), 512u * 2);
  auto decoded = io::decodeWeights(q16);
  test::expectClose(decoded[0].second, w, 2.0f / 65535 + 1e-6f);
  decoded[0].second.dispose();
  w.dispose();
}

TEST_F(IoTest, QuantizationInt8KeepsWeightsQuantizedAtRest) {
  // Eligible kernels (rank >= 2, "/kernel", not depthwise) serialize as
  // per-channel int8 codes and decode back as i8 tensors with parameters
  // attached — no dequantize on load. Everything else stays f32.
  Tensor w = o::randomUniform(Shape{9, 6}, -3, 3, 11);
  Tensor bias = o::randomUniform(Shape{6}, -1, 1, 12);
  std::vector<std::pair<std::string, Tensor>> named = {
      {"dense/kernel", w}, {"dense/bias", bias}};
  io::WeightsManifest m = io::encodeWeights(named, io::Quantization::kInt8);
  EXPECT_EQ(m.totalBytes(), 9u * 6 + 6 * 4);  // 1 byte/code, bias raw f32

  auto decoded = io::decodeWeights(m);
  ASSERT_EQ(decoded.size(), 2u);
  Tensor& qw = decoded[0].second;
  EXPECT_EQ(qw.dtype(), DType::i8);
  ASSERT_NE(qw.quantParams(), nullptr);
  ASSERT_EQ(qw.quantParams()->scale.size(), 6u);

  // Dequantized values stay within half a per-channel quantization step.
  const auto orig = w.dataSync();
  const auto codes = qw.dataSync();
  const auto& qp = *qw.quantParams();
  for (std::size_t i = 0; i < orig.size(); ++i) {
    const float s = qp.scale[i % 6];
    EXPECT_NEAR(codes[i] * s, orig[i], s / 2 + 1e-6f);
  }
  EXPECT_EQ(decoded[1].second.dtype(), DType::f32);
  test::expectClose(decoded[1].second, bias, 0);

  // A second encode of the already-int8 tensor round-trips codes verbatim.
  std::vector<std::pair<std::string, Tensor>> renamed = {
      {"dense/kernel", qw}};
  auto again = io::decodeWeights(io::encodeWeights(renamed));
  test::expectClose(again[0].second, qw, 0);
  EXPECT_EQ(again[0].second.dtype(), DType::i8);
  for (auto& [n, t] : again) t.dispose();
  for (auto& [n, t] : decoded) t.dispose();
  w.dispose();
  bias.dispose();
}

TEST_F(IoTest, QuantizationConstantTensor) {
  Tensor w = o::fill(Shape{16}, 3.25f);
  std::vector<std::pair<std::string, Tensor>> named = {{"w", w}};
  auto decoded =
      io::decodeWeights(io::encodeWeights(named, io::Quantization::kUint8));
  test::expectClose(decoded[0].second, w, 0);
  decoded[0].second.dispose();
  w.dispose();
}

TEST_F(IoTest, ShardingSplitsAtLimit) {
  // 1000 floats with a 1 KB shard limit -> 4000 bytes -> 4 shards (E11).
  Tensor w = o::randomNormal(Shape{1000}, 0, 1, 5);
  std::vector<std::pair<std::string, Tensor>> named = {{"w", w}};
  io::WeightsManifest m =
      io::encodeWeights(named, io::Quantization::kNone, 1024);
  EXPECT_EQ(m.shards.size(), 4u);
  for (std::size_t i = 0; i + 1 < m.shards.size(); ++i) {
    EXPECT_EQ(m.shards[i].size(), 1024u);
  }
  auto decoded = io::decodeWeights(m);
  test::expectClose(decoded[0].second, w, 0);
  decoded[0].second.dispose();
  w.dispose();
}

TEST_F(IoTest, WeightSpecJsonRoundTrip) {
  io::WeightSpec s;
  s.name = "layer/kernel";
  s.shape = Shape{3, 4};
  s.dtype = DType::f32;
  s.quantization = io::Quantization::kUint8;
  s.quantMin = -1.5f;
  s.quantScale = 0.01f;
  io::WeightSpec back = io::WeightSpec::fromJson(
      io::Json::parse(s.toJson().dump()));
  EXPECT_EQ(back.name, s.name);
  EXPECT_EQ(back.shape.toString(), "[3,4]");
  EXPECT_EQ(back.quantization, io::Quantization::kUint8);
  EXPECT_FLOAT_EQ(back.quantMin, s.quantMin);
  EXPECT_FLOAT_EQ(back.quantScale, s.quantScale);
}

// ----------------------------------------------------------- model save/load

TEST_F(IoTest, ModelSaveLoadRoundTrip) {
  auto model = sequential("saveload");
  L::DenseOptions d1;
  d1.units = 8;
  d1.activation = "relu";
  model->add(std::make_shared<L::Dense>(d1));
  L::DenseOptions d2;
  d2.units = 2;
  d2.activation = "softmax";
  model->add(std::make_shared<L::Dense>(d2));
  model->build(Shape{1, 5});

  Tensor x = o::randomNormal(Shape{3, 5}, 0, 1, 6);
  Tensor yBefore = model->predict(x);

  const std::string dir = "/tmp/tfjs_cpp_test_model";
  std::filesystem::remove_all(dir);
  io::saveModel(*model, Shape{1, 5}, dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/model.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/group1-shard1of1.bin"));

  auto loaded = io::loadModel(dir);
  Tensor yAfter = loaded->predict(x);
  test::expectClose(yAfter, yBefore, 1e-6f);

  for (Tensor t : {x, yBefore, yAfter}) t.dispose();
  model->dispose();
  loaded->dispose();
  std::filesystem::remove_all(dir);
}

TEST_F(IoTest, ModelSaveLoadQuantizedStaysClose) {
  auto model = sequential("quantized");
  L::DenseOptions d;
  d.units = 4;
  model->add(std::make_shared<L::Dense>(d));
  model->build(Shape{1, 6});
  Tensor x = o::randomNormal(Shape{2, 6}, 0, 1, 7);
  Tensor yBefore = model->predict(x);

  const std::string dir = "/tmp/tfjs_cpp_test_model_q8";
  std::filesystem::remove_all(dir);
  io::SaveOptions opts;
  opts.quantization = io::Quantization::kUint8;
  io::saveModel(*model, Shape{1, 6}, dir, opts);
  auto loaded = io::loadModel(dir);
  Tensor yAfter = loaded->predict(x);
  test::expectClose(yAfter, yBefore, 0.05f);

  for (Tensor t : {x, yBefore, yAfter}) t.dispose();
  model->dispose();
  loaded->dispose();
  std::filesystem::remove_all(dir);
}

TEST_F(IoTest, LoadMissingModelThrows) {
  EXPECT_THROW(io::loadModel("/tmp/does_not_exist_tfjs"),
               InvalidArgumentError);
}

// ---------------------------------------------------------------- converter

io::GraphDef makeTrainingGraph() {
  // input -> conv(w) -> relu -> output, plus an Adam training subgraph and
  // a checkpoint saver hanging off the weights.
  io::GraphDef g;
  g.nodes.push_back({"input", "Placeholder", {}, Tensor()});
  g.nodes.push_back({"w", "VariableV2", {}, ops::randomNormal(Shape{3, 3, 1, 4},
                                                              0, 1, 8)});
  g.nodes.push_back({"conv", "Conv2D", {"input", "w"}, Tensor()});
  g.nodes.push_back({"relu", "Relu", {"conv"}, Tensor()});
  g.nodes.push_back({"grad_w", "Conv2DBackpropFilter",
                     {"input", "relu"}, Tensor()});
  g.nodes.push_back({"m", "VariableV2", {}, ops::zeros(Shape{3, 3, 1, 4})});
  g.nodes.push_back({"train", "ApplyAdam", {"w", "m", "grad_w"}, Tensor()});
  g.nodes.push_back({"save", "SaveV2", {"w", "m"}, Tensor()});
  g.outputs = {"relu"};
  return g;
}

TEST_F(IoTest, ConverterPrunesTrainingOps) {
  io::GraphDef g = makeTrainingGraph();
  io::GraphDef pruned = io::pruneTrainingOps(g);
  EXPECT_EQ(pruned.nodes.size(), 4u);  // input, w, conv, relu
  for (const auto& n : pruned.nodes) {
    EXPECT_FALSE(io::isTrainingOnlyOp(n.op)) << n.op;
    EXPECT_NE(n.name, "m");
    EXPECT_NE(n.name, "train");
    EXPECT_NE(n.name, "save");
  }
}

TEST_F(IoTest, ConverterDropsOptimizerSlotWeights) {
  io::GraphDef g = makeTrainingGraph();
  io::ConvertStats stats;
  io::WeightsManifest m =
      io::convertGraph(g, io::Quantization::kNone, io::kDefaultShardBytes,
                       &stats);
  // Only "w" survives: the Adam slot variable "m" is training-only state.
  ASSERT_EQ(m.specs.size(), 1u);
  EXPECT_EQ(m.specs[0].name, "w");
  EXPECT_EQ(stats.nodesBefore, 8u);
  EXPECT_EQ(stats.nodesAfter, 4u);
  EXPECT_EQ(stats.weightsBytesAfter, 3u * 3 * 1 * 4 * 4);
  EXPECT_LT(stats.weightsBytesAfter, stats.weightsBytesBefore);
}

TEST_F(IoTest, ConverterHandlesControlEdgesAndSlots) {
  io::GraphDef g;
  g.nodes.push_back({"w", "VariableV2", {}, ops::ones(Shape{2})});
  g.nodes.push_back({"out", "Identity", {"w:0", "^w"}, Tensor()});
  g.outputs = {"out:0"};
  io::GraphDef pruned = io::pruneTrainingOps(g);
  EXPECT_EQ(pruned.nodes.size(), 2u);
}

TEST_F(IoTest, ConverterQuantizesOnTopOfPruning) {
  io::GraphDef g = makeTrainingGraph();
  io::ConvertStats stats;
  io::convertGraph(g, io::Quantization::kUint8, io::kDefaultShardBytes,
                   &stats);
  EXPECT_EQ(stats.weightsBytesAfter, 3u * 3 * 1 * 4);  // 1 byte per weight
}

// ------------------------------------------------------------ MobileNet IO

TEST_F(IoTest, MobileNetSaveLoadSharded) {
  // A 0.25-width MobileNet still has ~200k params; with a 256 KB shard limit
  // the save must produce several shards and round-trip exactly.
  models::MobileNetOptions opts;
  opts.alpha = 0.25f;
  opts.inputSize = 32;
  opts.numClasses = 10;
  auto model = models::buildMobileNetV1(opts);
  model->build(Shape{1, 32, 32, 3});

  const std::string dir = "/tmp/tfjs_cpp_test_mobilenet";
  std::filesystem::remove_all(dir);
  io::SaveOptions save;
  save.maxShardBytes = 256 * 1024;
  io::saveModel(*model, Shape{1, 32, 32, 3}, dir, save);

  int shards = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".bin") {
      ++shards;
      EXPECT_LE(entry.file_size(), 256u * 1024);
    }
  }
  EXPECT_GT(shards, 1);

  auto loaded = io::loadModel(dir);
  Tensor x = o::randomNormal(Shape{1, 32, 32, 3}, 0, 1, 10);
  Tensor a = model->predict(x);
  Tensor b = loaded->predict(x);
  test::expectClose(a, b, 1e-6f);
  for (Tensor t : {x, a, b}) t.dispose();
  model->dispose();
  loaded->dispose();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tfjs
