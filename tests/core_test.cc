// Core library tests: shapes, broadcasting utilities, tensor lifetime
// (dispose / refcounted data containers / free reshape-clone), tidy scopes,
// memory accounting, fp16 round-trip, and the profiler (paper sections
// 3.4, 3.7, 3.8).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/engine.h"
#include "core/half.h"
#include "core/util.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("native"); }
};

// ----------------------------------------------------------------- shapes

TEST_F(CoreTest, ShapeBasics) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.size(), 24u);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s.toString(), "[2,3,4]");
  auto strides = s.strides();
  EXPECT_EQ(strides[0], 12u);
  EXPECT_EQ(strides[1], 4u);
  EXPECT_EQ(strides[2], 1u);
}

TEST_F(CoreTest, ShapeScalarAndEmptyDim) {
  Shape scalar{};
  EXPECT_EQ(scalar.rank(), 0);
  EXPECT_EQ(scalar.size(), 1u);
  Shape empty{0, 3};
  EXPECT_EQ(empty.size(), 0u);
}

TEST_F(CoreTest, ShapeSqueezed) {
  Shape s{1, 3, 1, 2};
  EXPECT_EQ(s.squeezed().toString(), "[3,2]");
  EXPECT_EQ(Shape({1, 1}).squeezed().rank(), 0);
}

TEST_F(CoreTest, ShapeNegativeDimThrows) {
  EXPECT_THROW(Shape({2, -2}), InvalidArgumentError);
}

TEST_F(CoreTest, BroadcastShapes) {
  EXPECT_EQ(util::broadcastShapes(Shape{2, 3}, Shape{3}).toString(), "[2,3]");
  EXPECT_EQ(util::broadcastShapes(Shape{4, 1, 3}, Shape{2, 1}).toString(),
            "[4,2,3]");
  EXPECT_EQ(util::broadcastShapes(Shape{}, Shape{5}).toString(), "[5]");
  EXPECT_THROW(util::broadcastShapes(Shape{2, 3}, Shape{4}),
               InvalidArgumentError);
}

TEST_F(CoreTest, BroadcastedAxes) {
  auto axes = util::broadcastedAxes(Shape{3}, Shape{2, 3});
  ASSERT_EQ(axes.size(), 1u);
  EXPECT_EQ(axes[0], 0);
  axes = util::broadcastedAxes(Shape{4, 1, 3}, Shape{4, 2, 3});
  ASSERT_EQ(axes.size(), 1u);
  EXPECT_EQ(axes[0], 1);
}

TEST_F(CoreTest, NormalizeAxes) {
  auto axes = util::normalizeAxes(std::array<int, 2>{-1, 0}, 3);
  EXPECT_EQ(axes, (std::vector<int>{0, 2}));
  EXPECT_THROW(util::normalizeAxes(std::array<int, 1>{3}, 3),
               InvalidArgumentError);
  EXPECT_THROW(util::normalizeAxes(std::array<int, 2>{1, 1}, 3),
               InvalidArgumentError);
}

// ----------------------------------------------------- tensors & lifetime

TEST_F(CoreTest, TensorCreateAndRead) {
  Tensor t = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.size(), 6u);
  test::expectValues(t, {1, 2, 3, 4, 5, 6});
  t.dispose();
}

TEST_F(CoreTest, DisposedTensorThrows) {
  Tensor t = o::scalar(1);
  t.dispose();
  EXPECT_TRUE(t.isDisposed());
  EXPECT_THROW(t.dataSync(), DisposedError);
  EXPECT_THROW(o::add(t, t), DisposedError);
  // Double dispose is a no-op.
  t.dispose();
}

TEST_F(CoreTest, ReshapeSharesDataContainer) {
  const auto before = memory();
  Tensor t = o::tensor({1, 2, 3, 4}, Shape{2, 2});
  Tensor r = t.reshape(Shape{4});
  // Two tensors, ONE data buffer: reshape is free (paper section 3.4).
  EXPECT_EQ(memory().numTensors, before.numTensors + 2);
  EXPECT_EQ(memory().numDataBuffers, before.numDataBuffers + 1);
  EXPECT_EQ(t.dataId(), r.dataId());
  test::expectValues(r, {1, 2, 3, 4});
  // Disposing one alias keeps the container alive for the other.
  t.dispose();
  test::expectValues(r, {1, 2, 3, 4});
  r.dispose();
  EXPECT_EQ(memory().numDataBuffers, before.numDataBuffers);
  EXPECT_EQ(memory().numBytes, before.numBytes);
}

TEST_F(CoreTest, CloneSharesDataContainer) {
  Tensor t = o::tensor({7, 8}, Shape{2});
  Tensor c = t.clone();
  EXPECT_EQ(t.dataId(), c.dataId());
  EXPECT_NE(t.id(), c.id());
  t.dispose();
  c.dispose();
}

TEST_F(CoreTest, ReshapeWrongSizeThrows) {
  Tensor t = o::tensor({1, 2, 3, 4}, Shape{4});
  EXPECT_THROW(t.reshape(Shape{3}), InvalidArgumentError);
  t.dispose();
}

TEST_F(CoreTest, CastWideningIsFree) {
  const auto before = memory();
  Tensor i = o::tensor({1, 0, 2}, Shape{3}, DType::i32);
  Tensor f = i.cast(DType::f32);
  EXPECT_EQ(memory().numDataBuffers, before.numDataBuffers + 1);
  EXPECT_EQ(f.dtype(), DType::f32);
  i.dispose();
  f.dispose();
}

TEST_F(CoreTest, CastNarrowingMaterializes) {
  Tensor f = o::tensor({1.7f, -2.3f, 0.f}, Shape{3});
  Tensor i = f.cast(DType::i32);
  EXPECT_EQ(i.dtype(), DType::i32);
  test::expectValues(i, {1, -2, 0});
  Tensor b = f.cast(DType::b8);
  test::expectValues(b, {1, 1, 0});
  f.dispose();
  i.dispose();
  b.dispose();
}

// -------------------------------------------------------------- tidy/memory

TEST_F(CoreTest, TidyDisposesIntermediates) {
  const auto before = memory();
  Tensor result = tidy([] {
    Tensor a = o::tensor({1, 2}, Shape{2});
    Tensor b = o::tensor({3, 4}, Shape{2});
    Tensor c = o::add(a, b);     // intermediate
    return o::mulScalar(c, 2);   // survives
  });
  // Exactly the returned tensor survives (plus its buffer).
  EXPECT_EQ(memory().numTensors, before.numTensors + 1);
  test::expectValues(result, {8, 12});
  result.dispose();
  EXPECT_EQ(memory().numTensors, before.numTensors);
  EXPECT_EQ(memory().numBytes, before.numBytes);
}

TEST_F(CoreTest, TidyNested) {
  const auto before = memory();
  Tensor r = tidy([] {
    Tensor inner = tidy([] {
      Tensor a = o::scalar(2);
      return o::mulScalar(a, 3);
    });
    return o::addScalar(inner, 1);
  });
  EXPECT_EQ(memory().numTensors, before.numTensors + 1);
  EXPECT_FLOAT_EQ(r.scalarSync(), 7);
  r.dispose();
}

TEST_F(CoreTest, KeepSurvivesTidy) {
  const auto before = memory();
  Tensor kept;
  tidyVoid([&] {
    kept = o::scalar(5);
    kept.keep();
    Tensor tmp = o::scalar(6);  // disposed by tidy
    (void)tmp;
  });
  EXPECT_FALSE(kept.isDisposed());
  EXPECT_EQ(memory().numTensors, before.numTensors + 1);
  kept.dispose();
}

TEST_F(CoreTest, TidyEndsScopeOnException) {
  const auto before = memory();
  EXPECT_THROW(tidyVoid([&] {
    Tensor tmp = o::scalar(1);
    (void)tmp;
    throw InvalidArgumentError("boom");
  }),
               InvalidArgumentError);
  EXPECT_EQ(memory().numTensors, before.numTensors);
}

TEST_F(CoreTest, MemoryLeakWithoutDisposeIsObservable) {
  const auto before = memory();
  {
    Tensor t = o::tensor({1, 2, 3, 4}, Shape{4});
    (void)t;
    // handle goes out of scope WITHOUT dispose: the data container leaks,
    // exactly the failure mode the paper's section 3.7 warns about.
  }
  EXPECT_EQ(memory().numTensors, before.numTensors + 1);
  EXPECT_GT(memory().numBytes, before.numBytes);
}

// -------------------------------------------------------------- variables

TEST_F(CoreTest, VariableAssignAndDispose) {
  Variable v(o::tensor({1, 2}, Shape{2}), "core_test_var");
  test::expectValues(v.value(), {1, 2});
  Tensor next = o::tensor({3, 4}, Shape{2});
  v.assign(next);
  test::expectValues(v.value(), {3, 4});
  // Shape mismatch rejected.
  Tensor bad = o::tensor({1, 2, 3}, Shape{3});
  EXPECT_THROW(v.assign(bad), InvalidArgumentError);
  bad.dispose();
  v.dispose();
}

TEST_F(CoreTest, VariableSurvivesTidy) {
  Variable v(o::scalar(1), "core_test_var2");
  tidyVoid([&] {
    Tensor next = o::addScalar(v.value(), 1);
    v.assign(next);
  });
  EXPECT_FLOAT_EQ(v.value().scalarSync(), 2);
  v.dispose();
}

// ---------------------------------------------------------------- fp16

TEST_F(CoreTest, HalfRoundTripExactSmallIntegers) {
  for (float f : {0.f, 1.f, -1.f, 2.f, 1024.f, -2048.f, 0.5f, 0.25f}) {
    EXPECT_FLOAT_EQ(roundTripHalf(f), f);
  }
}

TEST_F(CoreTest, HalfUnderflowAndOverflow) {
  // 1e-8 is below the smallest subnormal half (~5.96e-8): flushes to zero.
  EXPECT_FLOAT_EQ(roundTripHalf(1e-8f), 0.f);
  // 1e5 overflows the half range (max 65504): becomes +inf.
  EXPECT_TRUE(std::isinf(roundTripHalf(1e5f)));
  // Max finite half survives.
  EXPECT_FLOAT_EQ(roundTripHalf(65504.f), 65504.f);
}

TEST_F(CoreTest, HalfRoundsToNearest) {
  // 1 + 2^-11 is exactly between 1 and the next half (1 + 2^-10):
  // round-to-even gives 1.
  EXPECT_FLOAT_EQ(roundTripHalf(1.0f + 0.00048828125f), 1.0f);
  EXPECT_FLOAT_EQ(roundTripHalf(2049.f), 2048.f);  // 11-bit mantissa limit
}

// -------------------------------------------------------- time / profile

TEST_F(CoreTest, TimeReportsKernelTime) {
  Tensor a = o::randomNormal(Shape{64, 64});
  TimingInfo t = time([&] {
    Tensor b = o::matMul(a, a);
    b.dataSync();
    b.dispose();
  });
  EXPECT_GT(t.wallMs, 0);
  EXPECT_GT(t.kernelMs, 0);
  a.dispose();
}

TEST_F(CoreTest, ProfileCountsNewTensorsAndKernels) {
  Tensor a = o::tensor({1, 2, 3, 4}, Shape{4});
  ProfileInfo info = profile([&] {
    Tensor b = o::addScalar(a, 1);  // scalar() + add -> >= 2 tensors
    b.dispose();
  });
  EXPECT_GE(info.kernels.size(), 1u);
  EXPECT_GT(info.peakBytes, 0u);
  bool sawAdd = false;
  for (const auto& k : info.kernels) sawAdd |= (k.name == "add");
  EXPECT_TRUE(sawAdd);
  a.dispose();
}

TEST_F(CoreTest, DebugModeThrowsOnNaN) {
  Engine::get().setDebugMode(true);
  Tensor bad = o::tensor({-1.0f}, Shape{1});
  try {
    Tensor y = o::log(bad);  // log(-1) = NaN
    y.dispose();
    Engine::get().setDebugMode(false);
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    Engine::get().setDebugMode(false);
    EXPECT_NE(std::string(e.what()).find("log"), std::string::npos);
  }
  bad.dispose();
}

// ---------------------------------------------------------- backend mgmt

TEST_F(CoreTest, BackendRegistryListsAll) {
  auto names = Engine::get().registeredBackends();
  EXPECT_NE(std::find(names.begin(), names.end(), "cpu"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "native"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "webgl"), names.end());
}

TEST_F(CoreTest, UnknownBackendThrows) {
  EXPECT_THROW(setBackend("does-not-exist"), InvalidArgumentError);
}

TEST_F(CoreTest, CrossBackendMigration) {
  setBackend("native");
  Tensor a = o::tensor({1, 2, 3}, Shape{3});
  setBackend("cpu");
  // Using a native-born tensor on cpu migrates its container.
  Tensor b = o::addScalar(a, 1);
  test::expectValues(b, {2, 3, 4});
  a.dispose();
  b.dispose();
  setBackend("native");
}

}  // namespace
}  // namespace tfjs
