// Eager autodiff tests (paper section 3.5): analytic gradients, numerical
// gradient checks, native control flow through the tape, variable gradients,
// and optimizers.
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/optimizers.h"
#include "autodiff/tape.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
namespace ad = autodiff;

class AutodiffTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { setBackend(GetParam()); }
};

// Run the full autodiff suite on native (fast) and webgl (async device);
// cpu shares kernels semantics with native via the shared scalar ops.
INSTANTIATE_TEST_SUITE_P(Backends, AutodiffTest,
                         ::testing::Values("native", "webgl"),
                         [](const auto& info) { return info.param; });

/// Central-difference numerical gradient of f at x (element-wise).
std::vector<float> numericalGrad(
    const std::function<Tensor(const Tensor&)>& f, const Tensor& x,
    float eps = 1e-2f) {
  const auto xv = x.dataSync();
  std::vector<float> g(xv.size());
  for (std::size_t i = 0; i < xv.size(); ++i) {
    auto perturbed = xv;
    perturbed[i] = xv[i] + eps;
    Tensor xp = o::tensor(perturbed, x.shape());
    perturbed[i] = xv[i] - eps;
    Tensor xm = o::tensor(perturbed, x.shape());
    Tensor yp = f(xp);
    Tensor ym = f(xm);
    g[i] = (yp.scalarSync() - ym.scalarSync()) / (2 * eps);
    xp.dispose();
    xm.dispose();
    yp.dispose();
    ym.dispose();
  }
  return g;
}

TEST_P(AutodiffTest, GradOfSquare) {
  Tensor x = o::tensor({3.f}, Shape{1});
  Tensor g = ad::grad([](const Tensor& t) { return o::sum(o::square(t)); }, x);
  test::expectValues(g, {6});  // d(x^2)/dx = 2x
  x.dispose();
  g.dispose();
}

TEST_P(AutodiffTest, GradBasicChain) {
  // y = sum((2x + 1)^2); dy/dx = 2 * (2x+1) * 2 = 8x + 4
  Tensor x = o::tensor({0, 1, 2}, Shape{3});
  Tensor g = ad::grad(
      [](const Tensor& t) {
        return o::sum(o::square(o::addScalar(o::mulScalar(t, 2), 1)));
      },
      x);
  test::expectValues(g, {4, 12, 20});
  x.dispose();
  g.dispose();
}

TEST_P(AutodiffTest, GradNotLeakedIntermediates) {
  Tensor x = o::tensor({1, 2}, Shape{2});
  const auto before = memory();
  Tensor g = ad::grad(
      [](const Tensor& t) { return o::sum(o::mul(o::exp(t), o::tanh(t))); },
      x);
  // Only the gradient survives the grad scope.
  EXPECT_EQ(memory().numTensors, before.numTensors + 1);
  g.dispose();
  x.dispose();
}

TEST_P(AutodiffTest, GradMatMul) {
  // y = sum(A·B): dA = ones·B^T, dB = A^T·ones.
  Tensor a = o::tensor({1, 2, 3, 4}, Shape{2, 2});
  Tensor b = o::tensor({5, 6, 7, 8}, Shape{2, 2});
  auto gs = ad::grads(
      [](std::span<const Tensor> xs) {
        return o::sum(o::matMul(xs[0], xs[1]));
      },
      std::array<Tensor, 2>{a, b});
  test::expectValues(gs[0], {11, 15, 11, 15});
  test::expectValues(gs[1], {4, 4, 6, 6});
  for (auto& g : gs) g.dispose();
  a.dispose();
  b.dispose();
}

TEST_P(AutodiffTest, GradBroadcastReducesCorrectly) {
  // z = sum(a * b) with b broadcast over rows: db sums over rows.
  Tensor a = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  Tensor b = o::tensor({1, 1, 1}, Shape{3});
  auto gs = ad::grads(
      [](std::span<const Tensor> xs) { return o::sum(o::mul(xs[0], xs[1])); },
      std::array<Tensor, 2>{a, b});
  test::expectShape(gs[1], Shape{3});
  test::expectValues(gs[1], {5, 7, 9});
  for (auto& g : gs) g.dispose();
  a.dispose();
  b.dispose();
}

TEST_P(AutodiffTest, NumericalCheckUnaryChain) {
  Tensor x = o::tensor({0.5f, -0.3f, 1.2f, 0.1f}, Shape{4});
  auto f = [](const Tensor& t) {
    return o::sum(o::mul(o::sigmoid(t), o::tanh(o::mulScalar(t, 0.5f))));
  };
  Tensor g = ad::grad(f, x);
  const auto expected = numericalGrad(f, x);
  test::expectValues(g, expected, 1e-2f);
  g.dispose();
  x.dispose();
}

TEST_P(AutodiffTest, NumericalCheckSoftmaxCrossEntropyStyle) {
  Tensor x = o::tensor({0.2f, -0.4f, 0.7f, 0.1f, 0.5f, -0.2f}, Shape{2, 3});
  Tensor labels = o::tensor({1, 0, 0, 0, 0, 1}, Shape{2, 3});
  labels.keep();
  auto f = [&labels](const Tensor& t) {
    Tensor p = o::softmax(t);
    Tensor logp = o::log(o::maximum(p, o::scalar(1e-7f)));
    return o::neg(o::sum(o::mul(labels, logp)));
  };
  Tensor g = ad::grad(f, x);
  const auto expected = numericalGrad(f, x);
  test::expectValues(g, expected, 2e-2f);
  g.dispose();
  x.dispose();
  labels.dispose();
}

TEST_P(AutodiffTest, NumericalCheckConv2D) {
  Tensor x = o::randomNormal(Shape{1, 4, 4, 2}, 0, 1, 11);
  Tensor f = o::randomNormal(Shape{3, 3, 2, 2}, 0, 0.5f, 12);
  f.keep();
  auto loss = [&f](const Tensor& t) {
    return o::sum(o::square(o::conv2d(t, f, 1, 1, PadMode::kSame)));
  };
  Tensor g = ad::grad(loss, x);
  const auto expected = numericalGrad(loss, x, 1e-2f);
  const auto got = g.dataSync();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 0.05f) << "at " << i;
  }
  g.dispose();
  x.dispose();
  f.dispose();
}

TEST_P(AutodiffTest, NumericalCheckDepthwiseConvAndPool) {
  Tensor x = o::randomNormal(Shape{1, 4, 4, 2}, 0, 1, 13);
  Tensor f = o::randomNormal(Shape{2, 2, 2, 1}, 0, 0.5f, 14);
  f.keep();
  auto loss = [&f](const Tensor& t) {
    Tensor dw = o::depthwiseConv2d(t, f, 1, 1, PadMode::kValid);
    Tensor p = o::avgPool(dw, 2, 2, 1, 1, PadMode::kValid);
    return o::sum(o::square(p));
  };
  Tensor g = ad::grad(loss, x);
  const auto expected = numericalGrad(loss, x, 1e-2f);
  const auto got = g.dataSync();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 0.05f) << "at " << i;
  }
  g.dispose();
  x.dispose();
  f.dispose();
}

TEST_P(AutodiffTest, MaxPoolRoutesGradientToArgmax) {
  Tensor x = o::tensor({1, 5, 2, 3}, Shape{1, 2, 2, 1});
  Tensor g = ad::grad(
      [](const Tensor& t) {
        return o::sum(o::maxPool(t, 2, 2, 1, 1, PadMode::kValid));
      },
      x);
  test::expectValues(g, {0, 1, 0, 0});
  g.dispose();
  x.dispose();
}

TEST_P(AutodiffTest, NativeControlFlowInTracedFunction) {
  // The eager benefit the paper highlights: plain C++ if/while in f.
  Tensor x = o::tensor({2.f}, Shape{1});
  auto f = [](const Tensor& t) {
    Tensor acc = t.clone();
    for (int i = 0; i < 3; ++i) {
      acc = o::mul(acc, t);  // acc = t^4 after loop
    }
    return o::sum(acc);
  };
  Tensor g = ad::grad(f, x);
  test::expectValues(g, {32});  // d(t^4)/dt = 4 t^3 = 32
  g.dispose();
  x.dispose();
}

TEST_P(AutodiffTest, DisconnectedInputGetsZeros) {
  Tensor x = o::tensor({1, 2}, Shape{2});
  Tensor unused = o::tensor({3, 4}, Shape{2});
  auto gs = ad::grads(
      [](std::span<const Tensor> xs) { return o::sum(o::square(xs[0])); },
      std::array<Tensor, 2>{x, unused});
  test::expectValues(gs[1], {0, 0});
  for (auto& g : gs) g.dispose();
  x.dispose();
  unused.dispose();
}

TEST_P(AutodiffTest, ValueAndGradsReturnsLoss) {
  Tensor x = o::tensor({3.f}, Shape{1});
  auto [y, gs] = ad::valueAndGrads([&] { return o::sum(o::square(x)); },
                                   std::span<const Tensor>(&x, 1));
  EXPECT_FLOAT_EQ(y.scalarSync(), 9);
  test::expectValues(gs[0], {6});
  y.dispose();
  gs[0].dispose();
  x.dispose();
}

TEST_P(AutodiffTest, NestedGradThrows) {
  Tensor x = o::tensor({1.f}, Shape{1});
  EXPECT_THROW(
      ad::grad(
          [](const Tensor& t) {
            Tensor inner =
                ad::grad([](const Tensor& u) { return o::sum(u); }, t);
            return o::sum(inner);
          },
          x),
      InvalidArgumentError);
  x.dispose();
}

TEST_P(AutodiffTest, VariableGrads) {
  Variable w(o::tensor({2.f}, Shape{1}), "ad_w_" + std::string(GetParam()));
  Variable b(o::tensor({1.f}, Shape{1}), "ad_b_" + std::string(GetParam()));
  auto result = ad::variableGrads(
      [&] {
        // loss = (w*3 + b)^2 = 49; dw = 2*7*3 = 42, db = 2*7 = 14
        Tensor pred = o::add(o::mulScalar(w.value(), 3), b.value());
        return o::sum(o::square(pred));
      },
      std::array<Variable, 2>{w, b});
  EXPECT_FLOAT_EQ(result.value.scalarSync(), 49);
  test::expectValues(result.grads[0].second, {42});
  test::expectValues(result.grads[1].second, {14});
  result.value.dispose();
  for (auto& [v, g] : result.grads) g.dispose();
  w.dispose();
  b.dispose();
}

// ------------------------------------------------------------- optimizers

/// One quadratic-descent step sanity check per optimizer: loss must drop.
class OptimizerTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { setBackend("native"); }
};

INSTANTIATE_TEST_SUITE_P(All, OptimizerTest,
                         ::testing::Values("sgd", "momentum", "rmsprop",
                                           "adam", "adagrad"),
                         [](const auto& info) { return info.param; });

TEST_P(OptimizerTest, ConvergesOnQuadratic) {
  Variable x(o::tensor({5.f}, Shape{1}),
             std::string("opt_x_") + GetParam());
  // Adagrad's effective step decays as 1/sqrt(sum g^2); give it a larger
  // base rate so all optimizers are compared over the same 60 steps.
  const float lr = std::string(GetParam()) == "adagrad" ? 1.0f : 0.1f;
  auto optimizer = ad::makeOptimizer(GetParam(), lr);
  auto loss = [&] { return o::sum(o::square(x.value())); };
  float first = 0, last = 0;
  for (int i = 0; i < 60; ++i) {
    Tensor cost = optimizer->minimize(loss, /*returnCost=*/true,
                                      std::array<Variable, 1>{x});
    const float c = cost.scalarSync();
    if (i == 0) first = c;
    last = c;
    cost.dispose();
  }
  EXPECT_LT(last, first * 0.2f) << "optimizer " << GetParam()
                                << " failed to reduce the loss";
  x.dispose();
}

TEST_F(OptimizerTest, SgdMatchesClosedForm) {
  setBackend("native");
  Variable x(o::tensor({1.f}, Shape{1}), "opt_sgd_exact");
  ad::SGDOptimizer sgd(0.25f);
  // loss = x^2, grad = 2x, step: x <- x - 0.25*2x = 0.5x
  for (int i = 0; i < 3; ++i) {
    Tensor c = sgd.minimize([&] { return o::sum(o::square(x.value())); });
    (void)c;
  }
  EXPECT_NEAR(x.value().scalarSync(), 0.125f, 1e-6f);
  x.dispose();
}

TEST_F(OptimizerTest, MinimizeDoesNotLeak) {
  setBackend("native");
  Variable x(o::tensor({2.f}, Shape{1}), "opt_leak_check");
  ad::AdamOptimizer adam(0.01f);
  auto loss = [&] { return o::sum(o::square(x.value())); };
  // Warm-up creates the optimizer slots.
  adam.minimize(loss, false, std::array<Variable, 1>{x});
  const auto before = memory();
  for (int i = 0; i < 5; ++i) {
    adam.minimize(loss, false, std::array<Variable, 1>{x});
  }
  EXPECT_EQ(memory().numTensors, before.numTensors);
  EXPECT_EQ(memory().numBytes, before.numBytes);
  x.dispose();
}

}  // namespace
}  // namespace tfjs
