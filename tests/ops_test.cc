// Ops API tests, parameterized over every backend ("cpu" interpreted,
// "native" vectorized, "webgl" simulated GPU) so all kernels are checked for
// agreement on the same cases — the cross-backend consistency the paper's
// testing infrastructure enforces across browsers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;

class OpsTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override { setBackend(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(AllBackends, OpsTest,
                         ::testing::Values("cpu", "native", "webgl"),
                         [](const auto& info) { return info.param; });

// ----------------------------------------------------------------- binary

TEST_P(OpsTest, AddSameShape) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 2, 3, 4}, Shape{2, 2});
    Tensor b = o::tensor({10, 20, 30, 40}, Shape{2, 2});
    test::expectValues(o::add(a, b), {11, 22, 33, 44});
  });
}

TEST_P(OpsTest, AddBroadcastRowVector) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
    Tensor b = o::tensor({10, 20, 30}, Shape{3});
    test::expectValues(o::add(a, b), {11, 22, 33, 14, 25, 36});
  });
}

TEST_P(OpsTest, AddBroadcastColumnAndScalar) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 2, 3, 4}, Shape{2, 2});
    Tensor col = o::tensor({10, 20}, Shape{2, 1});
    test::expectValues(o::add(a, col), {11, 12, 23, 24});
    test::expectValues(o::addScalar(a, 100), {101, 102, 103, 104});
  });
}

TEST_P(OpsTest, SubMulDiv) {
  tidyVoid([] {
    Tensor a = o::tensor({4, 9, 16, 25}, Shape{4});
    Tensor b = o::tensor({2, 3, 4, 5}, Shape{4});
    test::expectValues(o::sub(a, b), {2, 6, 12, 20});
    test::expectValues(o::mul(a, b), {8, 27, 64, 125});
    test::expectValues(o::div(a, b), {2, 3, 4, 5});
  });
}

TEST_P(OpsTest, PowMaximumMinimum) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 2, 3}, Shape{3});
    Tensor b = o::tensor({3, 2, 1}, Shape{3});
    test::expectValues(o::pow(a, b), {1, 4, 3});
    test::expectValues(o::maximum(a, b), {3, 2, 3});
    test::expectValues(o::minimum(a, b), {1, 2, 1});
    test::expectValues(o::squaredDifference(a, b), {4, 0, 4});
  });
}

TEST_P(OpsTest, FloorDivAndMod) {
  tidyVoid([] {
    Tensor a = o::tensor({7, -7, 7.5f}, Shape{3});
    Tensor b = o::tensor({2, 2, 2}, Shape{3});
    test::expectValues(o::floorDiv(a, b), {3, -4, 3});
    test::expectValues(o::mod(a, b), {1, 1, 1.5f});  // floored mod
  });
}

TEST_P(OpsTest, Comparisons) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 2, 3}, Shape{3});
    Tensor b = o::tensor({2, 2, 2}, Shape{3});
    test::expectValues(o::equal(a, b), {0, 1, 0});
    test::expectValues(o::notEqual(a, b), {1, 0, 1});
    test::expectValues(o::greater(a, b), {0, 0, 1});
    test::expectValues(o::greaterEqual(a, b), {0, 1, 1});
    test::expectValues(o::less(a, b), {1, 0, 0});
    test::expectValues(o::lessEqual(a, b), {1, 1, 0});
    EXPECT_EQ(o::equal(a, b).dtype(), DType::b8);
  });
}

TEST_P(OpsTest, LogicalOps) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 1, 0, 0}, Shape{4}, DType::b8);
    Tensor b = o::tensor({1, 0, 1, 0}, Shape{4}, DType::b8);
    test::expectValues(o::logicalAnd(a, b), {1, 0, 0, 0});
    test::expectValues(o::logicalOr(a, b), {1, 1, 1, 0});
    test::expectValues(o::logicalXor(a, b), {0, 1, 1, 0});
    test::expectValues(o::logicalNot(a), {0, 0, 1, 1});
  });
}

TEST_P(OpsTest, Where) {
  tidyVoid([] {
    Tensor c = o::tensor({1, 0, 1, 0}, Shape{4}, DType::b8);
    Tensor a = o::tensor({1, 2, 3, 4}, Shape{4});
    Tensor b = o::tensor({10, 20, 30, 40}, Shape{4});
    test::expectValues(o::where(c, a, b), {1, 20, 3, 40});
  });
}

// ------------------------------------------------------------------ unary

TEST_P(OpsTest, BasicUnary) {
  tidyVoid([] {
    Tensor x = o::tensor({-2, -0.5f, 0, 1.5f}, Shape{4});
    test::expectValues(o::neg(x), {2, 0.5f, 0, -1.5f});
    test::expectValues(o::abs(x), {2, 0.5f, 0, 1.5f});
    test::expectValues(o::sign(x), {-1, -1, 0, 1});
    test::expectValues(o::floor(x), {-2, -1, 0, 1});
    test::expectValues(o::ceil(x), {-2, 0, 0, 2});
    test::expectValues(o::square(x), {4, 0.25f, 0, 2.25f});
  });
}

TEST_P(OpsTest, ExpLogSqrt) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 4, 9}, Shape{3});
    test::expectValues(o::sqrt(x), {1, 2, 3});
    test::expectValues(o::rsqrt(x), {1, 0.5f, 1.0f / 3}, 1e-4f);
    test::expectValues(o::log(x), {0, std::log(4.f), std::log(9.f)}, 1e-4f);
    Tensor e = o::tensor({0, 1, 2}, Shape{3});
    test::expectValues(o::exp(e), {1, std::exp(1.f), std::exp(2.f)}, 1e-3f);
  });
}

TEST_P(OpsTest, Activations) {
  tidyVoid([] {
    Tensor x = o::tensor({-3, -1, 0, 2, 8}, Shape{5});
    test::expectValues(o::relu(x), {0, 0, 0, 2, 8});
    test::expectValues(o::relu6(x), {0, 0, 0, 2, 6});
    test::expectValues(o::leakyRelu(x, 0.1f), {-0.3f, -0.1f, 0, 2, 8},
                       1e-5f);
    test::expectValues(o::sigmoid(o::tensor({0.f}, Shape{1})), {0.5f});
    test::expectValues(o::tanh(o::tensor({0.f}, Shape{1})), {0});
    test::expectValues(o::clipByValue(x, -1, 3), {-1, -1, 0, 2, 3});
    test::expectValues(o::step(x), {0, 0, 0, 1, 1});
  });
}

TEST_P(OpsTest, EluSeluSoftplusErf) {
  tidyVoid([] {
    Tensor x = o::tensor({-1, 0, 1}, Shape{3});
    test::expectValues(o::elu(x), {std::expm1(-1.f), 0, 1}, 1e-5f);
    test::expectValues(o::softplus(x),
                       {std::log1p(std::exp(-1.f)), std::log(2.f),
                        std::log1p(std::exp(1.f))},
                       1e-4f);
    test::expectValues(o::erf(x), {std::erf(-1.f), 0, std::erf(1.f)}, 1e-4f);
  });
}

TEST_P(OpsTest, NaNAndFiniteChecks) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 0, -1}, Shape{3});
    Tensor nan = o::log(o::tensor({-1.f}, Shape{1}));
    test::expectValues(o::isNaN(nan), {1});
    test::expectValues(o::isFinite(x), {1, 1, 1});
  });
}

// ----------------------------------------------------------------- matmul

TEST_P(OpsTest, MatMul2D) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
    Tensor b = o::tensor({7, 8, 9, 10, 11, 12}, Shape{3, 2});
    test::expectValues(o::matMul(a, b), {58, 64, 139, 154});
  });
}

TEST_P(OpsTest, MatMulTransposes) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});   // [2,3]
    Tensor aT = o::tensor({1, 4, 2, 5, 3, 6}, Shape{3, 2});  // a^T
    Tensor b = o::tensor({7, 8, 9, 10, 11, 12}, Shape{3, 2});
    Tensor bT = o::tensor({7, 9, 11, 8, 10, 12}, Shape{2, 3});
    Tensor expected = o::matMul(a, b);
    test::expectClose(o::matMul(aT, b, true, false), expected);
    test::expectClose(o::matMul(a, bT, false, true), expected);
    test::expectClose(o::matMul(aT, bT, true, true), expected);
  });
}

TEST_P(OpsTest, MatMulBatchedAndBroadcast) {
  tidyVoid([] {
    // batch 2: identical matrices stacked should equal twice the 2D result.
    Tensor a = o::tensor({1, 2, 3, 4, 1, 2, 3, 4}, Shape{2, 2, 2});
    Tensor b = o::tensor({5, 6, 7, 8, 5, 6, 7, 8}, Shape{2, 2, 2});
    Tensor y = o::matMul(a, b);
    test::expectValues(y, {19, 22, 43, 50, 19, 22, 43, 50});
    // broadcast: batch-1 rhs against batch-2 lhs.
    Tensor b1 = o::tensor({5, 6, 7, 8}, Shape{1, 2, 2});
    test::expectClose(o::matMul(a, b1), y);
  });
}

TEST_P(OpsTest, MatMulShapeMismatchThrows) {
  Tensor a = o::tensor({1, 2, 3, 4}, Shape{2, 2});
  Tensor b = o::tensor({1, 2, 3}, Shape{3, 1});
  EXPECT_THROW(o::matMul(a, b), InvalidArgumentError);
  a.dispose();
  b.dispose();
}

TEST_P(OpsTest, DotAndOuter) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 2, 3}, Shape{3});
    Tensor b = o::tensor({4, 5, 6}, Shape{3});
    EXPECT_FLOAT_EQ(o::dot(a, b).scalarSync(), 32);
    test::expectValues(o::outerProduct(a, b),
                       {4, 5, 6, 8, 10, 12, 12, 15, 18});
  });
}

// ------------------------------------------------------------ convolution

TEST_P(OpsTest, Conv2DIdentityKernel) {
  tidyVoid([] {
    // 1x1 identity filter: output == input.
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{1, 2, 2, 1});
    Tensor f = o::tensor({1.f}, Shape{1, 1, 1, 1});
    test::expectValues(o::conv2d(x, f, 1, 1, PadMode::kValid), {1, 2, 3, 4});
  });
}

TEST_P(OpsTest, Conv2DKnownValues) {
  tidyVoid([] {
    // 3x3 input, 2x2 sum filter, valid: each output = sum of 2x2 patch.
    Tensor x = o::tensor({1, 2, 3, 4, 5, 6, 7, 8, 9}, Shape{1, 3, 3, 1});
    Tensor f = o::ones(Shape{2, 2, 1, 1});
    test::expectValues(o::conv2d(x, f, 1, 1, PadMode::kValid),
                       {12, 16, 24, 28});
  });
}

TEST_P(OpsTest, Conv2DSamePadding) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{1, 2, 2, 1});
    Tensor f = o::ones(Shape{3, 3, 1, 1});
    // SAME keeps 2x2 output; each value sums the in-bounds 3x3 patch.
    test::expectValues(o::conv2d(x, f, 1, 1, PadMode::kSame),
                       {10, 10, 10, 10});
  });
}

TEST_P(OpsTest, Conv2DStride2) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                          16},
                         Shape{1, 4, 4, 1});
    Tensor f = o::ones(Shape{2, 2, 1, 1});
    test::expectValues(o::conv2d(x, f, 2, 2, PadMode::kValid),
                       {14, 22, 46, 54});
  });
}

TEST_P(OpsTest, Conv2DMultiChannel) {
  tidyVoid([] {
    // 2 input channels, 2 output channels, 1x1 filter = matmul over C.
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{1, 1, 2, 2});
    Tensor f = o::tensor({1, 0, 0, 1}, Shape{1, 1, 2, 2});  // identity
    test::expectValues(o::conv2d(x, f, 1, 1, PadMode::kValid), {1, 2, 3, 4});
    Tensor mix = o::tensor({0, 1, 1, 0}, Shape{1, 1, 2, 2});  // swap
    test::expectValues(o::conv2d(x, mix, 1, 1, PadMode::kValid),
                       {2, 1, 4, 3});
  });
}

TEST_P(OpsTest, DepthwiseConv2D) {
  tidyVoid([] {
    // Two channels, each with its own 2x2 sum filter scaled by 1 and 10.
    Tensor x = o::tensor({1, 1, 2, 2, 3, 3, 4, 4}, Shape{1, 2, 2, 2});
    std::vector<float> fv(2 * 2 * 2 * 1);
    // filter[fy][fx][c][0] = c == 0 ? 1 : 10
    for (int fy = 0; fy < 2; ++fy) {
      for (int fx = 0; fx < 2; ++fx) {
        fv[static_cast<std::size_t>((fy * 2 + fx) * 2 + 0)] = 1;
        fv[static_cast<std::size_t>((fy * 2 + fx) * 2 + 1)] = 10;
      }
    }
    Tensor f = o::tensor(fv, Shape{2, 2, 2, 1});
    test::expectValues(o::depthwiseConv2d(x, f, 1, 1, PadMode::kValid),
                       {10, 100});
  });
}

TEST_P(OpsTest, DepthwiseChannelMultiplier) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{1, 2, 2, 1});
    // channel multiplier 2: filter [1,1,1,2] with weights 1 and -1.
    Tensor f = o::tensor({1, -1}, Shape{1, 1, 1, 2});
    test::expectValues(o::depthwiseConv2d(x, f, 1, 1, PadMode::kValid),
                       {1, -1, 2, -2, 3, -3, 4, -4});
  });
}

TEST_P(OpsTest, SeparableConv2D) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{1, 2, 2, 1});
    Tensor dw = o::ones(Shape{2, 2, 1, 1});
    Tensor pw = o::tensor({2.f}, Shape{1, 1, 1, 1});
    test::expectValues(o::separableConv2d(x, dw, pw, 1, 1, PadMode::kValid),
                       {20});
  });
}

TEST_P(OpsTest, MaxAndAvgPool) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                          16},
                         Shape{1, 4, 4, 1});
    test::expectValues(o::maxPool(x, 2, 2, 2, 2, PadMode::kValid),
                       {6, 8, 14, 16});
    test::expectValues(o::avgPool(x, 2, 2, 2, 2, PadMode::kValid),
                       {3.5f, 5.5f, 11.5f, 13.5f});
  });
}

TEST_P(OpsTest, PoolSamePaddingExcludesPad) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{1, 2, 2, 1});
    // 3x3 SAME avg pool: corners average their in-bounds cells only.
    test::expectValues(o::avgPool(x, 3, 3, 1, 1, PadMode::kSame),
                       {2.5f, 2.5f, 2.5f, 2.5f});
  });
}

// -------------------------------------------------------------- reductions

TEST_P(OpsTest, SumAllAndAxes) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
    EXPECT_FLOAT_EQ(o::sum(x).scalarSync(), 21);
    test::expectValues(o::sum(x, std::array<int, 1>{0}), {5, 7, 9});
    test::expectValues(o::sum(x, std::array<int, 1>{1}), {6, 15});
    test::expectValues(o::sum(x, std::array<int, 1>{-1}), {6, 15});
    Tensor keep = o::sum(x, std::array<int, 1>{1}, true);
    test::expectShape(keep, Shape{2, 1});
  });
}

TEST_P(OpsTest, MeanMaxMinProd) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
    EXPECT_FLOAT_EQ(o::mean(x).scalarSync(), 3.5f);
    test::expectValues(o::mean(x, std::array<int, 1>{1}), {2, 5});
    EXPECT_FLOAT_EQ(o::max(x).scalarSync(), 6);
    EXPECT_FLOAT_EQ(o::min(x).scalarSync(), 1);
    test::expectValues(o::max(x, std::array<int, 1>{0}), {4, 5, 6});
    test::expectValues(o::prod(x, std::array<int, 1>{1}), {6, 120});
  });
}

TEST_P(OpsTest, AnyAllArgMaxArgMin) {
  tidyVoid([] {
    Tensor b = o::tensor({1, 0, 0, 1, 1, 1}, Shape{2, 3}, DType::b8);
    test::expectValues(o::any(b, std::array<int, 1>{1}), {1, 1});
    test::expectValues(o::all(b, std::array<int, 1>{1}), {0, 1});
    Tensor x = o::tensor({3, 9, 4, 8, 2, 5}, Shape{2, 3});
    test::expectValues(o::argMax(x), {1, 0});
    test::expectValues(o::argMin(x), {0, 1});
    EXPECT_EQ(o::argMax(x).dtype(), DType::i32);
    // Reduction over a non-trailing axis exercises the transpose path.
    test::expectValues(o::argMax(x, 0), {1, 0, 1});
  });
}

// -------------------------------------------------------------- transforms

TEST_P(OpsTest, ReshapeWithInference) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
    test::expectShape(o::reshape(x, Shape{3, -1}), Shape{3, 2});
    test::expectShape(o::flatten(x), Shape{6});
    EXPECT_THROW(o::reshape(x, Shape{-1, -1}), InvalidArgumentError);
  });
}

TEST_P(OpsTest, Transpose) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
    test::expectValues(o::transpose(x), {1, 4, 2, 5, 3, 6});
    Tensor x3 = o::tensor({1, 2, 3, 4, 5, 6, 7, 8}, Shape{2, 2, 2});
    test::expectValues(o::transpose(x3, std::array<int, 3>{2, 1, 0}),
                       {1, 5, 3, 7, 2, 6, 4, 8});
  });
}

TEST_P(OpsTest, SliceAndNegativeSize) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4, 5, 6, 7, 8, 9}, Shape{3, 3});
    test::expectValues(
        o::slice(x, std::array<int, 2>{1, 1}, std::array<int, 2>{2, 2}),
        {5, 6, 8, 9});
    test::expectValues(
        o::slice(x, std::array<int, 2>{0, 2}, std::array<int, 2>{-1, -1}),
        {3, 6, 9});
    EXPECT_THROW(
        o::slice(x, std::array<int, 2>{2, 2}, std::array<int, 2>{2, 2}),
        InvalidArgumentError);
  });
}

TEST_P(OpsTest, ConcatStackSplitUnstack) {
  tidyVoid([] {
    Tensor a = o::tensor({1, 2}, Shape{1, 2});
    Tensor b = o::tensor({3, 4}, Shape{1, 2});
    test::expectValues(o::concat({a, b}, 0), {1, 2, 3, 4});
    test::expectValues(o::concat({a, b}, 1), {1, 2, 3, 4});
    test::expectShape(o::concat({a, b}, 1), Shape{1, 4});

    Tensor s = o::stack(std::array<Tensor, 2>{a.reshape(Shape{2}),
                                              b.reshape(Shape{2})});
    test::expectShape(s, Shape{2, 2});
    test::expectValues(s, {1, 2, 3, 4});

    auto parts = o::split(s, 2, 0);
    test::expectValues(parts[0], {1, 2});
    test::expectValues(parts[1], {3, 4});

    auto rows = o::unstack(s, 0);
    ASSERT_EQ(rows.size(), 2u);
    test::expectShape(rows[0], Shape{2});
    test::expectValues(rows[1], {3, 4});
  });
}

TEST_P(OpsTest, PadGatherTileReverse) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{2, 2});
    test::expectValues(
        o::pad(x, std::array<std::pair<int, int>, 2>{{{1, 0}, {0, 1}}}, 9),
        {9, 9, 9, 1, 2, 9, 3, 4, 9});

    Tensor idx = o::tensor({1, 0, 1}, Shape{3}, DType::i32);
    test::expectValues(o::gather(x, idx, 0), {3, 4, 1, 2, 3, 4});
    test::expectValues(o::gather(x, idx, 1), {2, 1, 2, 4, 3, 4});

    test::expectValues(o::tile(x, std::array<int, 2>{1, 2}),
                       {1, 2, 1, 2, 3, 4, 3, 4});
    test::expectValues(o::reverse(x, std::array<int, 1>{0}), {3, 4, 1, 2});
    test::expectValues(o::reverse(x, std::array<int, 1>{1}), {2, 1, 4, 3});
  });
}

TEST_P(OpsTest, GatherOutOfRangeThrows) {
  Tensor x = o::tensor({1, 2}, Shape{2});
  Tensor idx = o::tensor({5}, Shape{1}, DType::i32);
  EXPECT_THROW(
      {
        Tensor y = o::gather(x, idx, 0);
        y.dataSync();  // webgl validates lazily at execution
        y.dispose();
      },
      Error);
  x.dispose();
  idx.dispose();
}

TEST_P(OpsTest, ExpandSqueezeOneHot) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2}, Shape{2});
    test::expectShape(o::expandDims(x, 0), Shape{1, 2});
    test::expectShape(o::expandDims(x, -1), Shape{2, 1});
    test::expectShape(o::squeeze(o::tensor({1.f}, Shape{1, 1, 1})), Shape{});

    Tensor idx = o::tensor({0, 2}, Shape{2}, DType::i32);
    test::expectValues(o::oneHot(idx, 3), {1, 0, 0, 0, 0, 1});
    test::expectValues(o::oneHot(idx, 3, 5, -5), {5, -5, -5, -5, -5, 5});
  });
}

TEST_P(OpsTest, ResizeBilinear) {
  tidyVoid([] {
    Tensor x = o::tensor({0, 2, 4, 6}, Shape{1, 2, 2, 1});
    Tensor up = o::resizeBilinear(x, 4, 4, /*alignCorners=*/true);
    const auto v = up.dataSync();
    EXPECT_FLOAT_EQ(v[0], 0);
    EXPECT_FLOAT_EQ(v[3], 2);
    EXPECT_FLOAT_EQ(v[12], 4);
    EXPECT_FLOAT_EQ(v[15], 6);
    // Downsize keeps corners under alignCorners.
    Tensor same = o::resizeBilinear(x, 2, 2, true);
    test::expectValues(same, {0, 2, 4, 6});
  });
}

// ------------------------------------------------------------- activations

TEST_P(OpsTest, SoftmaxRowsSumToOne) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 1, 1, 1}, Shape{2, 3});
    Tensor y = o::softmax(x);
    const auto v = y.dataSync();
    EXPECT_NEAR(v[0] + v[1] + v[2], 1.0f, 1e-5f);
    EXPECT_NEAR(v[3], 1.0f / 3, 1e-5f);
    EXPECT_LT(v[0], v[1]);
    EXPECT_LT(v[1], v[2]);
  });
}

TEST_P(OpsTest, SoftmaxNumericallyStableForLargeLogits) {
  tidyVoid([] {
    // Without the max-shift these logits would overflow exp().
    Tensor x = o::tensor({1000, 1001, 1002}, Shape{1, 3});
    Tensor y = o::softmax(x);
    const auto v = y.dataSync();
    EXPECT_NEAR(v[0] + v[1] + v[2], 1.0f, 1e-5f);
    EXPECT_FALSE(std::isnan(v[0]));
  });
}

TEST_P(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  tidyVoid([] {
    Tensor x = o::tensor({0.5f, -1, 2, 0, 1, -2}, Shape{2, 3});
    test::expectClose(o::logSoftmax(x), o::log(o::softmax(x)), 1e-4f);
  });
}

TEST_P(OpsTest, BatchNormInference) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{2, 2});
    Tensor mean = o::tensor({2, 3}, Shape{2});
    Tensor variance = o::tensor({1, 4}, Shape{2});
    Tensor offset = o::tensor({0, 1}, Shape{2});
    Tensor scale = o::tensor({1, 2}, Shape{2});
    Tensor y = o::batchNorm(x, mean, variance, offset, scale, 0);
    // col0: (x-2)/1*1+0 ; col1: (x-3)/2*2+1
    test::expectValues(y, {-1, 0, 1, 2}, 1e-3f);
  });
}

TEST_P(OpsTest, DropoutZeroRateIsIdentityAndScaling) {
  tidyVoid([] {
    Tensor x = o::ones(Shape{1000});
    test::expectClose(o::dropout(x, 0), x);
    Tensor y = o::dropout(x, 0.5f, 7);
    const auto v = y.dataSync();
    int zeros = 0;
    for (float f : v) {
      EXPECT_TRUE(f == 0.f || std::fabs(f - 2.f) < 1e-6f);
      zeros += f == 0.f;
    }
    EXPECT_GT(zeros, 350);
    EXPECT_LT(zeros, 650);
  });
}

// ------------------------------------------------------------ advanced ops

TEST_P(OpsTest, TopK) {
  tidyVoid([] {
    Tensor x = o::tensor({3, 9, 4, 8, 2, 5}, Shape{2, 3});
    o::TopK top = o::topk(x, 2);
    test::expectShape(top.values, Shape{2, 2});
    test::expectValues(top.values, {9, 4, 8, 5});
    test::expectValues(top.indices, {1, 2, 0, 2});
    EXPECT_EQ(top.indices.dtype(), DType::i32);
    // k == lastDim returns a full descending sort.
    o::TopK full = o::topk(x, 3);
    test::expectValues(full.values, {9, 4, 3, 8, 5, 2});
    // Ties break toward the lower index (TensorFlow convention).
    Tensor ties = o::tensor({7, 7, 1}, Shape{1, 3});
    test::expectValues(o::topk(ties, 2).indices, {0, 1});
    EXPECT_THROW(o::topk(x, 4), InvalidArgumentError);
  });
}

TEST_P(OpsTest, Cumsum) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{4});
    test::expectValues(o::cumsum(x), {1, 3, 6, 10});
    test::expectValues(o::cumsum(x, 0, /*exclusive=*/true), {0, 1, 3, 6});
    test::expectValues(o::cumsum(x, 0, false, /*reverse=*/true),
                       {10, 9, 7, 4});
    test::expectValues(o::cumsum(x, 0, true, true), {9, 7, 4, 0});
    // Axis 0 of a matrix sums down columns (exercises the transpose path).
    Tensor m = o::tensor({1, 2, 3, 4}, Shape{2, 2});
    test::expectValues(o::cumsum(m, 0), {1, 2, 4, 6});
    test::expectValues(o::cumsum(m, 1), {1, 3, 3, 7});
  });
}

TEST_P(OpsTest, L2NormalizeAndNorm) {
  tidyVoid([] {
    Tensor x = o::tensor({3, 4}, Shape{2});
    test::expectValues(o::l2Normalize(x), {0.6f, 0.8f}, 1e-5f);
    EXPECT_NEAR(o::norm(x).scalarSync(), 5.0f, 1e-5f);
    EXPECT_NEAR(o::norm(x, 1).scalarSync(), 7.0f, 1e-5f);
    EXPECT_NEAR(o::norm(x, -1).scalarSync(), 4.0f, 1e-5f);  // inf-norm
    // Zero vectors stay finite thanks to the epsilon guard.
    Tensor zero = o::zeros(Shape{3});
    for (float v : o::l2Normalize(zero).dataSync()) EXPECT_FLOAT_EQ(v, 0);
  });
}

TEST_P(OpsTest, MomentsAndLogSumExp) {
  tidyVoid([] {
    Tensor x = o::tensor({1, 2, 3, 4}, Shape{4});
    o::Moments m = o::moments(x);
    EXPECT_NEAR(m.mean.scalarSync(), 2.5f, 1e-5f);
    EXPECT_NEAR(m.variance.scalarSync(), 1.25f, 1e-5f);
    // Stable even for logits that would overflow a naive exp.
    Tensor big = o::tensor({1000, 1001}, Shape{2});
    const float expected = 1001.0f + std::log1p(std::exp(-1.0f));
    EXPECT_NEAR(o::logSumExp(big).scalarSync(), expected, 1e-3f);
  });
}

TEST_P(OpsTest, Prelu) {
  tidyVoid([] {
    Tensor x = o::tensor({-2, -1, 0, 3}, Shape{4});
    Tensor alpha = o::scalar(0.25f);
    test::expectValues(o::prelu(x, alpha), {-0.5f, -0.25f, 0, 3});
  });
}

// ---------------------------------------------------------------- creation

TEST_P(OpsTest, CreationOps) {
  tidyVoid([] {
    test::expectValues(o::zeros(Shape{3}), {0, 0, 0});
    test::expectValues(o::ones(Shape{2}), {1, 1});
    test::expectValues(o::fill(Shape{2}, 3.5f), {3.5f, 3.5f});
    test::expectValues(o::eye(2), {1, 0, 0, 1});
    test::expectValues(o::range(0, 5, 2), {0, 2, 4});
    test::expectValues(o::range(3, 0, -1), {3, 2, 1});
    test::expectValues(o::linspace(0, 1, 3), {0, 0.5f, 1});
    Tensor n = o::randomNormal(Shape{1000}, 0, 1, 1);
    EXPECT_NEAR(o::mean(n).scalarSync(), 0, 0.1);
    Tensor u = o::randomUniform(Shape{1000}, -1, 1, 2);
    EXPECT_NEAR(o::mean(u).scalarSync(), 0, 0.1);
    // Determinism: same seed, same values.
    test::expectClose(o::randomNormal(Shape{8}, 0, 1, 3),
                      o::randomNormal(Shape{8}, 0, 1, 3));
  });
}

TEST_P(OpsTest, OperatorOverloads) {
  using namespace tfjs::ops;  // NOLINT: operators
  tidyVoid([] {
    Tensor a = o::tensor({6, 8}, Shape{2});
    Tensor b = o::tensor({2, 4}, Shape{2});
    test::expectValues(a + b, {8, 12});
    test::expectValues(a - b, {4, 4});
    test::expectValues(a * b, {12, 32});
    test::expectValues(a / b, {3, 2});
  });
}

}  // namespace
}  // namespace tfjs
