// Parity tests for the parallel NativeBackend kernels.
//
// Two guarantees are asserted, on odd sizes that do not divide the parallel
// chunk grain (so ragged last chunks are exercised):
//  * parallel == serial, bitwise: the fixed chunk partition makes the
//    multi-threaded result byte-identical to the TFJS_NUM_THREADS=1 path;
//  * native == ref: elementwise and pooling kernels perform the identical
//    scalar operations, so values match exactly (float ==). The
//    multiply-accumulate kernels (GEMM/conv/depthwise/reduce) are compared
//    within a tight tolerance instead: the native target compiles with
//    -march=native, which contracts a*b+c into FMA (and reduce's 4-way
//    accumulator split predates this PR), so last-ulp differences from the
//    plainly-compiled reference backend are expected and correct. The
//    determinism guarantee of the thread pool is the *bitwise* one above.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "backends/common/ref_backend.h"
#include "backends/native/native_backend.h"
#include "core/conv_util.h"
#include "core/thread_pool.h"

namespace {

using tfjs::BinaryOp;
using tfjs::Conv2DInfo;
using tfjs::DataId;
using tfjs::PadMode;
using tfjs::Pool2DInfo;
using tfjs::PoolMode;
using tfjs::ReduceOp;
using tfjs::Shape;
using tfjs::TensorSpec;
using tfjs::UnaryOp;
using tfjs::backends::RefBackend;
using tfjs::backends::native::NativeBackend;
using tfjs::core::ThreadPool;

/// Deterministic pseudo-random values in [-1, 1] (LCG; no libc rand state).
std::vector<float> randomData(std::size_t n, std::uint32_t seed) {
  std::vector<float> v(n);
  std::uint32_t s = seed * 2654435761u + 1u;
  for (std::size_t i = 0; i < n; ++i) {
    s = s * 1664525u + 1013904223u;
    v[i] = static_cast<float>(s >> 8) / static_cast<float>(1u << 24) * 2.f -
           1.f;
  }
  return v;
}

class NativeParityTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = ThreadPool::get().numThreads(); }
  void TearDown() override { ThreadPool::get().setNumThreads(saved_); }

  TensorSpec put(tfjs::Backend& b, const std::vector<float>& v,
                 const Shape& shape) {
    return TensorSpec{b.write(v, shape), shape, tfjs::DType::f32};
  }

  /// Runs `kernel` on the native backend at 4 threads and at 1 thread, and
  /// on the reference backend; asserts parallel==serial bitwise. Returns
  /// {parallelResult, refResult} for the caller's value comparison.
  template <typename KernelFn>
  std::pair<std::vector<float>, std::vector<float>> runBoth(
      KernelFn&& kernel) {
    ThreadPool::get().setNumThreads(4);
    const std::vector<float> parallel = kernel(native_);
    ThreadPool::get().setNumThreads(1);
    const std::vector<float> serial = kernel(native_);
    const std::vector<float> ref = kernel(ref_);
    EXPECT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(std::memcmp(parallel.data(), serial.data(),
                          parallel.size() * sizeof(float)),
              0)
        << "parallel native result differs bitwise from serial native";
    return {parallel, ref};
  }

  static void expectExactlyEqual(const std::vector<float>& a,
                                 const std::vector<float>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "at flat index " << i;
    }
  }

  /// Equality up to FMA-contraction rounding (native is built with
  /// -march=native; ref is not).
  static void expectFmaClose(const std::vector<float>& a,
                             const std::vector<float>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      const float scale =
          std::max({1.f, std::abs(a[i]), std::abs(b[i])});
      EXPECT_NEAR(a[i], b[i], 1e-5f * scale) << "at flat index " << i;
    }
  }

  NativeBackend native_;
  RefBackend ref_;

 private:
  int saved_ = 1;
};

TEST_F(NativeParityTest, MatMulOddSizes) {
  // 1000 rows = 15 full kMC=64 panels + a ragged one.
  const int m = 1000, k = 129, n = 65;
  const auto aData = randomData(static_cast<std::size_t>(m) * k, 1);
  const auto bData = randomData(static_cast<std::size_t>(k) * n, 2);
  auto [par, ref] = runBoth([&](tfjs::Backend& be) {
    const TensorSpec a = put(be, aData, Shape{1, m, k});
    const TensorSpec b = put(be, bData, Shape{1, k, n});
    return be.read(be.matMul(a, b, false, false));
  });
  expectFmaClose(par, ref);
}

TEST_F(NativeParityTest, MatMulTransposedOperands) {
  const int m = 67, k = 35, n = 33;
  for (const bool tA : {false, true}) {
    for (const bool tB : {false, true}) {
      const auto aData = randomData(static_cast<std::size_t>(m) * k, 3);
      const auto bData = randomData(static_cast<std::size_t>(k) * n, 4);
      auto [par, ref] = runBoth([&](tfjs::Backend& be) {
        const TensorSpec a =
            put(be, aData, tA ? Shape{1, k, m} : Shape{1, m, k});
        const TensorSpec b =
            put(be, bData, tB ? Shape{1, n, k} : Shape{1, k, n});
        return be.read(be.matMul(a, b, tA, tB));
      });
      expectFmaClose(par, ref);
    }
  }
}

TEST_F(NativeParityTest, MatMulWideOutputUsesColumnPanels) {
  // n = 1100 > 2 * kNC column panels while m = 33 is a single row panel.
  const int m = 33, k = 47, n = 1100;
  const auto aData = randomData(static_cast<std::size_t>(m) * k, 5);
  const auto bData = randomData(static_cast<std::size_t>(k) * n, 6);
  auto [par, ref] = runBoth([&](tfjs::Backend& be) {
    const TensorSpec a = put(be, aData, Shape{1, m, k});
    const TensorSpec b = put(be, bData, Shape{1, k, n});
    return be.read(be.matMul(a, b, false, false));
  });
  expectFmaClose(par, ref);
}

TEST_F(NativeParityTest, Conv2dGeneralPath) {
  // Multi-chunk: 64 output rows split into ~14-row chunks.
  const Shape x{1, 64, 64, 8}, f{3, 3, 8, 8};
  const Conv2DInfo ci =
      tfjs::conv_util::computeConv2DInfo(x, f, 1, 1, PadMode::kSame);
  const auto xData = randomData(x.size(), 7);
  const auto fData = randomData(f.size(), 8);
  auto [par, ref] = runBoth([&](tfjs::Backend& be) {
    return be.read(be.conv2d(put(be, xData, x), put(be, fData, f), ci));
  });
  expectFmaClose(par, ref);
}

TEST_F(NativeParityTest, Conv2dOddStridedDilated) {
  const Shape x{2, 13, 11, 3}, f{3, 5, 3, 7};
  const Conv2DInfo ci =
      tfjs::conv_util::computeConv2DInfo(x, f, 2, 2, PadMode::kSame, 2, 1);
  const auto xData = randomData(x.size(), 9);
  const auto fData = randomData(f.size(), 10);
  auto [par, ref] = runBoth([&](tfjs::Backend& be) {
    return be.read(be.conv2d(put(be, xData, x), put(be, fData, f), ci));
  });
  expectFmaClose(par, ref);
}

TEST_F(NativeParityTest, Conv2dOneByOneGemmPath) {
  const Shape x{2, 9, 7, 5}, f{1, 1, 5, 6};
  const Conv2DInfo ci =
      tfjs::conv_util::computeConv2DInfo(x, f, 1, 1, PadMode::kValid);
  const auto xData = randomData(x.size(), 11);
  const auto fData = randomData(f.size(), 12);
  auto [par, ref] = runBoth([&](tfjs::Backend& be) {
    return be.read(be.conv2d(put(be, xData, x), put(be, fData, f), ci));
  });
  expectFmaClose(par, ref);
}

TEST_F(NativeParityTest, DepthwiseConv2d) {
  const Shape x{1, 40, 32, 6}, f{3, 3, 6, 2};
  const Conv2DInfo ci = tfjs::conv_util::computeConv2DInfo(
      x, f, 1, 1, PadMode::kSame, 1, 1, /*depthwise=*/true);
  const auto xData = randomData(x.size(), 13);
  const auto fData = randomData(f.size(), 14);
  auto [par, ref] = runBoth([&](tfjs::Backend& be) {
    return be.read(
        be.depthwiseConv2d(put(be, xData, x), put(be, fData, f), ci));
  });
  expectFmaClose(par, ref);
}

TEST_F(NativeParityTest, Pool2dMaxAndAvg) {
  const Shape x{1, 40, 32, 8};
  const Pool2DInfo pi =
      tfjs::conv_util::computePool2DInfo(x, 3, 2, 2, 2, PadMode::kSame);
  const auto xData = randomData(x.size(), 15);
  for (const PoolMode mode : {PoolMode::kMax, PoolMode::kAvg}) {
    auto [par, ref] = runBoth([&](tfjs::Backend& be) {
      return be.read(be.pool2d(mode, put(be, xData, x), pi));
    });
    expectExactlyEqual(par, ref);
  }
}

TEST_F(NativeParityTest, ElementwiseBinaryOddCount) {
  // 100003 elements: three full 32K-float chunks plus a ragged one.
  const std::size_t n = 100003;
  const Shape shape{static_cast<int>(n)};
  auto aData = randomData(n, 16);
  for (auto& v : aData) v += 1.5f;  // positive bases keep kPow finite
  auto bData = randomData(n, 17);
  for (auto& v : bData) v += 2.f;  // keep divisors away from zero
  for (const BinaryOp op :
       {BinaryOp::kAdd, BinaryOp::kMul, BinaryOp::kDiv, BinaryOp::kPow}) {
    auto [par, ref] = runBoth([&](tfjs::Backend& be) {
      return be.read(
          be.binary(op, put(be, aData, shape), put(be, bData, shape), shape));
    });
    expectExactlyEqual(par, ref);
  }
}

TEST_F(NativeParityTest, ElementwiseUnaryOddCount) {
  const std::size_t n = 70001;
  const Shape shape{static_cast<int>(n)};
  const auto xData = randomData(n, 18);
  for (const UnaryOp op : {UnaryOp::kRelu, UnaryOp::kSquare, UnaryOp::kExp,
                           UnaryOp::kSigmoid, UnaryOp::kTanh}) {
    auto [par, ref] = runBoth([&](tfjs::Backend& be) {
      return be.read(be.unary(op, put(be, xData, shape), 0, 0));
    });
    expectExactlyEqual(par, ref);
  }
}

TEST_F(NativeParityTest, ReduceSumMeanRowParallel) {
  // 77 rows of 1023: rows chunk by 16, inner length not a multiple of the
  // 4-way accumulator split. runBoth() asserts the bitwise parallel==serial
  // guarantee; against ref only closeness holds (the 4-accumulator order
  // differs from ref's strictly sequential sum — a pre-existing property of
  // the native backend, not introduced by parallelisation).
  const std::size_t outer = 77, inner = 1023;
  const Shape shape{static_cast<int>(outer), static_cast<int>(inner)};
  const auto xData = randomData(outer * inner, 19);
  for (const ReduceOp op : {ReduceOp::kSum, ReduceOp::kMean}) {
    auto [par, ref] = runBoth([&](tfjs::Backend& be) {
      return be.read(be.reduce(op, put(be, xData, shape), outer, inner));
    });
    ASSERT_EQ(par.size(), ref.size());
    for (std::size_t i = 0; i < par.size(); ++i) {
      EXPECT_NEAR(par[i], ref[i], 1e-3f) << "at row " << i;
    }
  }
}

}  // namespace
