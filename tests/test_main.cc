// Shared gtest main: registers all backends once; individual suites pick the
// backend they exercise via tfjs::setBackend.
#include <gtest/gtest.h>

#include "backends/register.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  tfjs::backends::registerAll();
  return RUN_ALL_TESTS();
}
