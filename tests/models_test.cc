// Models-repo tests (paper section 5.2): MobileNet architecture shapes and
// FLOP counts, the friendly classifier API, and the PoseNet wrapper with its
// Listing-3 contract (no tensors in the interface).
#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/synthetic.h"
#include "models/mobilenet.h"
#include "models/posenet.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;

class ModelsTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("native"); }
};

TEST_F(ModelsTest, MobileNetOutputShapeAndSoftmax) {
  models::MobileNetOptions opts;
  opts.alpha = 0.25f;
  opts.inputSize = 32;
  opts.numClasses = 10;
  auto model = models::buildMobileNetV1(opts);
  Tensor x = o::randomNormal(Shape{2, 32, 32, 3}, 0, 1, 1);
  Tensor y = model->predict(x);
  test::expectShape(y, Shape{2, 10});
  const auto v = y.dataSync();
  float row0 = 0;
  for (int i = 0; i < 10; ++i) row0 += v[static_cast<std::size_t>(i)];
  EXPECT_NEAR(row0, 1.0f, 1e-4f);  // softmax head
  x.dispose();
  y.dispose();
  model->dispose();
}

TEST_F(ModelsTest, MobileNetLayerCount) {
  // Folded graph: 1 stem conv + 13 x (dw + pw) + pool + dense = 29 layers.
  auto model = models::buildMobileNetV1({});
  EXPECT_EQ(model->layers().size(), 29u);
  // With batch norm: each conv unit gains BN + Activation.
  models::MobileNetOptions bn;
  bn.withBatchNorm = true;
  auto trainable = models::buildMobileNetV1(bn);
  EXPECT_EQ(trainable->layers().size(), 29u + 2u * 27u);
  model->dispose();
  trainable->dispose();
}

TEST_F(ModelsTest, MobileNetFlopsMatchKnownScale) {
  // MobileNet v1 1.0_224 is ~1.1 GFLOPs (569M MACs, Howard et al. Table 1).
  const std::size_t flops = models::mobileNetV1Flops({});
  EXPECT_GT(flops, 1'000'000'000u);
  EXPECT_LT(flops, 1'300'000'000u);
  // 0.25_128 is ~2x9 smaller in compute.
  models::MobileNetOptions small;
  small.alpha = 0.25f;
  small.inputSize = 128;
  EXPECT_LT(models::mobileNetV1Flops(small), flops / 20);
}

TEST_F(ModelsTest, MobileNetWidthMultiplierScalesParams) {
  models::MobileNetOptions a100;
  a100.inputSize = 64;
  models::MobileNetOptions a050 = a100;
  a050.alpha = 0.5f;
  auto m1 = models::buildMobileNetV1(a100);
  auto m2 = models::buildMobileNetV1(a050);
  m1->build(Shape{1, 64, 64, 3});
  m2->build(Shape{1, 64, 64, 3});
  // Conv params scale ~quadratically with alpha; the dense head is linear.
  EXPECT_GT(m1->countParams(), 2 * m2->countParams());
  m1->dispose();
  m2->dispose();
}

TEST_F(ModelsTest, ClassifierFriendlyApi) {
  models::MobileNetOptions opts;
  opts.alpha = 0.25f;
  opts.inputSize = 32;
  opts.numClasses = 10;
  models::MobileNetClassifier classifier(opts);
  // Input is a host image of a different size: the wrapper resizes.
  data::Image img = data::makeTestImage(48, 64, 24, 32);
  auto preds = classifier.classify(img, 3);
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_GE(preds[0].probability, preds[1].probability);
  EXPECT_GE(preds[1].probability, preds[2].probability);
  EXPECT_EQ(preds[0].className.substr(0, 6), "class_");
  // Deterministic across calls.
  auto again = classifier.classify(img, 3);
  EXPECT_EQ(preds[0].className, again[0].className);
  EXPECT_FLOAT_EQ(preds[0].probability, again[0].probability);
}

TEST_F(ModelsTest, ClassifierDoesNotLeak) {
  models::MobileNetOptions opts;
  opts.alpha = 0.25f;
  opts.inputSize = 32;
  opts.numClasses = 10;
  models::MobileNetClassifier classifier(opts);
  data::Image img = data::makeTestImage(32, 32, 16, 16);
  classifier.classify(img);  // warm-up builds nothing extra
  const auto before = memory();
  classifier.classify(img);
  EXPECT_EQ(memory().numTensors, before.numTensors);
}

TEST_F(ModelsTest, PoseNetReturnsAll17NamedKeypoints) {
  models::PoseNetOptions opts;
  opts.inputSize = 65;  // small for test speed
  models::PoseNet posenet(opts);
  data::Image img = data::makeTestImage(120, 80, 30, 40);
  models::Pose pose = posenet.estimateSinglePose(img);
  ASSERT_EQ(pose.keypoints.size(), 17u);
  EXPECT_EQ(pose.keypoints[0].part, "nose");
  EXPECT_EQ(pose.keypoints[16].part, "rightAnkle");
  for (const auto& k : pose.keypoints) {
    // Positions land in the caller's image coordinate system.
    EXPECT_GE(k.x, -16);
    EXPECT_LE(k.x, 80 + 16);
    EXPECT_GE(k.y, -16);
    EXPECT_LE(k.y, 120 + 16);
    // Sigmoid scores.
    EXPECT_GE(k.score, 0);
    EXPECT_LE(k.score, 1);
  }
  EXPECT_GT(pose.score, 0);
  const std::string json = pose.toJsonString();
  EXPECT_NE(json.find("\"part\": \"nose\""), std::string::npos);
  EXPECT_NE(json.find("keypoints"), std::string::npos);
}

TEST_F(ModelsTest, PoseNetDeterministicAndNoTensorsLeaked) {
  models::PoseNetOptions opts;
  opts.inputSize = 65;
  models::PoseNet posenet(opts);
  data::Image img = data::makeTestImage(65, 65, 20, 20);
  models::Pose a = posenet.estimateSinglePose(img);
  const auto before = memory();
  models::Pose b = posenet.estimateSinglePose(img);
  EXPECT_EQ(memory().numTensors, before.numTensors);
  ASSERT_EQ(a.keypoints.size(), b.keypoints.size());
  for (std::size_t i = 0; i < a.keypoints.size(); ++i) {
    EXPECT_FLOAT_EQ(a.keypoints[i].x, b.keypoints[i].x);
    EXPECT_FLOAT_EQ(a.keypoints[i].score, b.keypoints[i].score);
  }
}

TEST_F(ModelsTest, PoseNetOutputStrideControlsBackboneDepth) {
  models::PoseNetOptions s8;
  s8.outputStride = 8;
  s8.inputSize = 65;
  models::PoseNetOptions s16;
  s16.outputStride = 16;
  s16.inputSize = 65;
  models::PoseNet p8(s8);
  models::PoseNet p16(s16);
  EXPECT_LT(p8.backbone().layers().size(), p16.backbone().layers().size());
  EXPECT_THROW(models::PoseNet(models::PoseNetOptions{0.5f, 65, 7, 1}),
               InvalidArgumentError);
}

TEST_F(ModelsTest, SyntheticDataIsSeparableAndSeeded) {
  auto ds1 = data::makeSyntheticDigits(20, 12, 4, 0.1f, 7);
  auto ds2 = data::makeSyntheticDigits(20, 12, 4, 0.1f, 7);
  test::expectClose(ds1.images, ds2.images, 0);
  test::expectClose(ds1.labels, ds2.labels, 0);
  // One-hot labels: every row sums to 1.
  Tensor rowSums = o::sum(ds1.labels, std::array<int, 1>{1});
  for (float v : rowSums.dataSync()) EXPECT_FLOAT_EQ(v, 1);
  rowSums.dispose();
  ds1.dispose();
  ds2.dispose();
}

TEST_F(ModelsTest, FromPixelsNormalization) {
  data::Image img = data::Image::filled(2, 2, 3, 255);
  Tensor t = data::fromPixels(img);
  test::expectShape(t, Shape{1, 2, 2, 3});
  for (float v : t.dataSync()) EXPECT_FLOAT_EQ(v, 1.0f);
  Tensor raw = data::fromPixels(img, /*normalize=*/false);
  for (float v : raw.dataSync()) EXPECT_FLOAT_EQ(v, 255.0f);
  t.dispose();
  raw.dispose();
}

}  // namespace
}  // namespace tfjs
