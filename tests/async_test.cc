// Asynchronous-execution tests (paper sections 3.6 and 4.1.1): the event
// loop, promise-style data(), fence ordering, and the Figure 2/3 semantics
// in miniature.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "backends/webgl/webgl_backend.h"
#include "core/engine.h"
#include "core/event_loop.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
using async::EventLoop;
using async::FrameStats;

class AsyncTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("webgl"); }
};

TEST_F(AsyncTest, EventLoopFiresFramesOnCadence) {
  EventLoop loop(100);  // 10 ms period
  int frames = 0;
  loop.onFrame([&](int) { ++frames; });
  FrameStats stats = loop.run(100);
  EXPECT_GE(frames, 8);
  EXPECT_LE(frames, 12);
  EXPECT_EQ(stats.framesDropped, 0);
}

TEST_F(AsyncTest, EventLoopRunsPostedTasksBetweenFrames) {
  EventLoop loop(60);
  int taskRuns = 0;
  loop.postTask([&] { ++taskRuns; });
  loop.postTask([&] { ++taskRuns; });
  loop.run(50);
  EXPECT_EQ(taskRuns, 2);
}

TEST_F(AsyncTest, BlockingTaskDropsFrames) {
  EventLoop loop(60);
  loop.onFrame([](int) {});
  loop.postTask([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  });
  FrameStats stats = loop.run(160);
  EXPECT_GT(stats.framesDropped, 0);
  EXPECT_GT(stats.maxStallMs, 60);
}

TEST_F(AsyncTest, FrameIndexIncrements) {
  EventLoop loop(120);
  std::vector<int> indices;
  loop.onFrame([&](int i) { indices.push_back(i); });
  loop.run(60);
  ASSERT_GE(indices.size(), 3u);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], static_cast<int>(i));
  }
}

// ------------------------------------------- thread-safe postTask (serving)

TEST_F(AsyncTest, PostTaskFromManyThreadsRunsEveryTask) {
  // Multi-producer regression test: postTask used to push into an unguarded
  // deque, racing concurrent producers against the loop's pop. Run under
  // tools/run_tsan.sh to verify the fix.
  EventLoop loop(100);
  std::atomic<int> ran{0};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        loop.postTask([&] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  // Producers post concurrently with the running loop; they finish in
  // microseconds, so a 300 ms run drains everything.
  loop.run(300);
  for (auto& p : producers) p.join();
  while (loop.pendingTasks() > 0) loop.run(20);  // posts that raced run()'s end
  EXPECT_EQ(ran.load(), kThreads * kPerThread);
  EXPECT_EQ(loop.pendingTasks(), 0u);
}

TEST_F(AsyncTest, CrossThreadPostWakesIdleLoop) {
  // At 4 FPS the loop idles ~250 ms between frames; a cross-thread post must
  // wake it immediately, not after the idle sleep runs out.
  EventLoop loop(4);
  const auto start = std::chrono::steady_clock::now();
  double taskRanAtMs = -1;
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    loop.postTask([&] {
      taskRanAtMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    });
  });
  loop.run(240);  // ends before the second frame at 250 ms
  poster.join();
  ASSERT_GE(taskRanAtMs, 0) << "posted task never ran";
  EXPECT_LT(taskRanAtMs, 150) << "idle loop did not wake on cross-thread post";
}

// --------------------------------------------------- maxStallMs semantics

TEST_F(AsyncTest, SingleFrameRunReportsNoStall) {
  // Regression: lastFrameFired initialised to 0 counted loop-start -> first
  // frame as a "stall", so any run that fired one frame reported a bogus
  // maxStallMs. Stalls are defined only between consecutive fired frames.
  EventLoop loop(5);  // 200 ms period: a 100 ms run fires exactly one frame
  int frames = 0;
  loop.onFrame([&](int) {
    ++frames;
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  });
  FrameStats stats = loop.run(100);
  EXPECT_EQ(frames, 1);
  EXPECT_EQ(stats.maxStallMs, 0);
}

// ------------------------------------------------------- data() semantics

TEST_F(AsyncTest, DataFutureResolvesWithoutExplicitFlush) {
  Tensor a = o::randomNormal(Shape{64, 64}, 0, 1, 1);
  Tensor b = o::matMul(a, a);
  auto fut = b.data();
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_EQ(fut.get().size(), 64u * 64);
  a.dispose();
  b.dispose();
}

TEST_F(AsyncTest, MultipleOutstandingReadbacksResolveInOrder) {
  Tensor x = o::scalar(1);
  std::vector<std::future<std::vector<float>>> futures;
  std::vector<Tensor> tensors;
  for (int i = 0; i < 5; ++i) {
    Tensor y = o::mulScalar(x, static_cast<float>(i));
    futures.push_back(y.data());
    tensors.push_back(y);
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(futures[static_cast<std::size_t>(i)].get()[0],
                    static_cast<float>(i));
  }
  for (auto& t : tensors) t.dispose();
  x.dispose();
}

TEST_F(AsyncTest, DataSyncAfterDataReturnsSameValues) {
  Tensor a = o::tensor({1, 2, 3}, Shape{3});
  Tensor b = o::square(a);
  auto fut = b.data();
  const auto viaSync = b.dataSync();
  const auto viaAsync = fut.get();
  EXPECT_EQ(viaSync, viaAsync);
  a.dispose();
  b.dispose();
}

TEST_F(AsyncTest, CpuBackendsProvideReadyFutures) {
  // The same data() API works on synchronous backends (section 3.6: the API
  // is uniform; only the implementation differs).
  setBackend("native");
  Tensor a = o::tensor({4.f}, Shape{1});
  auto fut = a.data();
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_FLOAT_EQ(fut.get()[0], 4);
  a.dispose();
  setBackend("webgl");
}

// ---------------------------------------------------------- fence ordering

TEST_F(AsyncTest, FenceAfterWorkWaitsForThatWork) {
  auto& backend =
      dynamic_cast<backends::webgl::WebGLBackend&>(Engine::get().backend());
  const auto before = backend.gpuStats().programsRun;
  Tensor a = o::randomNormal(Shape{96, 96}, 0, 1, 2);
  Tensor b = o::matMul(a, a);
  Tensor c = o::relu(b);
  backend.context().insertFence().get();
  EXPECT_GE(backend.gpuStats().programsRun, before + 2);
  for (Tensor t : {a, b, c}) t.dispose();
}

TEST_F(AsyncTest, FlushDrainsEverything) {
  Tensor acc = o::scalar(0);
  for (int i = 0; i < 25; ++i) {
    Tensor next = o::addScalar(acc, 2);
    acc.dispose();
    acc = next;
  }
  Engine::get().backend().flush();
  // After flush, even dataSync is instantaneous (already computed).
  EXPECT_FLOAT_EQ(acc.scalarSync(), 50);
  acc.dispose();
}

// ----------------------------------------------- Figure 2/3 in miniature

TEST_F(AsyncTest, DataSyncBlocksLoopButDataDoesNot) {
  Tensor w = o::randomNormal(Shape{160, 160}, 0, 1, 3);

  auto run = [&](bool useAsync) {
    EventLoop loop(60);
    loop.onFrame([](int) {});
    std::future<std::vector<float>> pending;
    loop.postTask([&] {
      Tensor y = o::matMul(w, w);
      if (useAsync) {
        pending = y.data();
      } else {
        y.dataSync();
      }
      y.dispose();
    });
    FrameStats stats = loop.run(150);
    if (pending.valid()) pending.get();
    return stats;
  };

  FrameStats sync = run(false);
  FrameStats async = run(true);
  // maxStallMs is defined between consecutive fired frames, so the
  // comparison is only meaningful when both runs fired at least two (under
  // sanitizers the blocking run can be slowed past its whole duration).
  if (sync.framesScheduled >= 2 && async.framesScheduled >= 2) {
    EXPECT_LE(async.maxStallMs, sync.maxStallMs);
  }
  EXPECT_LE(async.framesDropped, sync.framesDropped);
  w.dispose();
}

}  // namespace
}  // namespace tfjs
