// GraphExecutor tests (paper section 5.1 — "load and execute pre-trained
// TensorFlow SavedModels"): op dispatch, attrs, memoization, pruning
// integration (convert-then-execute), error paths, and cross-backend runs.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "io/graph_executor.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
using io::GraphDef;
using io::GraphExecutor;
using io::GraphNode;
using io::Json;

class GraphExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("native"); }
};

GraphNode node(std::string name, std::string op,
               std::vector<std::string> inputs, Tensor weight = Tensor(),
               Json attrs = Json()) {
  return GraphNode{std::move(name), std::move(op), std::move(inputs),
                   weight, std::move(attrs)};
}

TEST_F(GraphExecutorTest, LinearGraphMatchesOps) {
  // y = sigmoid(x·W + b)
  GraphDef g;
  Tensor w = o::randomNormal(Shape{3, 2}, 0, 1, 1);
  Tensor b = o::randomNormal(Shape{2}, 0, 1, 2);
  g.nodes.push_back(node("x", "Placeholder", {}));
  g.nodes.push_back(node("w", "VariableV2", {}, w));
  g.nodes.push_back(node("b", "VariableV2", {}, b));
  g.nodes.push_back(node("mm", "MatMul", {"x", "w"}));
  g.nodes.push_back(node("biased", "BiasAdd", {"mm", "b"}));
  g.nodes.push_back(node("out", "Sigmoid", {"biased"}));
  g.outputs = {"out"};
  GraphExecutor exec(std::move(g));

  Tensor x = o::randomNormal(Shape{4, 3}, 0, 1, 3);
  Tensor got = exec.execute({{"x", x}});
  Tensor expected = o::sigmoid(o::add(o::matMul(x, w), b));
  test::expectClose(got, expected, 1e-5f);
  for (Tensor t : {x, got, expected, w, b}) t.dispose();
}

TEST_F(GraphExecutorTest, ConvPoolGraphWithAttrs) {
  GraphDef g;
  Tensor f = o::randomNormal(Shape{3, 3, 1, 4}, 0, 0.5f, 4);
  Json convAttrs;
  convAttrs["strides"] = Json(io::JsonArray{Json(1), Json(2), Json(2), Json(1)});
  convAttrs["padding"] = "SAME";
  Json poolAttrs;
  poolAttrs["ksize"] = Json(io::JsonArray{Json(1), Json(2), Json(2), Json(1)});
  poolAttrs["strides"] = Json(io::JsonArray{Json(1), Json(2), Json(2), Json(1)});
  poolAttrs["padding"] = "VALID";
  g.nodes.push_back(node("x", "Placeholder", {}));
  g.nodes.push_back(node("f", "VariableV2", {}, f));
  g.nodes.push_back(node("conv", "Conv2D", {"x", "f"}, Tensor(), convAttrs));
  g.nodes.push_back(node("act", "Relu6", {"conv"}));
  g.nodes.push_back(node("pool", "MaxPool", {"act"}, Tensor(), poolAttrs));
  g.outputs = {"pool"};
  GraphExecutor exec(std::move(g));

  Tensor x = o::randomNormal(Shape{1, 8, 8, 1}, 0, 1, 5);
  Tensor got = exec.execute({{"x", x}});
  Tensor expected = o::maxPool(
      o::relu6(o::conv2d(x, f, 2, 2, PadMode::kSame)), 2, 2, 2, 2,
      PadMode::kValid);
  test::expectShape(got, Shape{1, 2, 2, 4});
  test::expectClose(got, expected, 1e-5f);
  for (Tensor t : {x, got, expected, f}) t.dispose();
}

TEST_F(GraphExecutorTest, DiamondGraphEvaluatesSharedNodeOnce) {
  // x -> square -> (a = s + s): the shared node must not be evaluated
  // twice. The elementwise fuser collapses the whole diamond into ONE
  // region dispatch whose program computes the shared value once and
  // references it twice — so the profiler sees exactly one elementwise
  // kernel total (one fusedRegion, zero standalone muls).
  GraphDef g;
  g.nodes.push_back(node("x", "Placeholder", {}));
  g.nodes.push_back(node("s", "Mul", {"x", "x"}));
  g.nodes.push_back(node("a", "Add", {"s", "s"}));
  g.outputs = {"a"};
  GraphExecutor exec(std::move(g));

  Tensor x = o::tensor({2, 3}, Shape{2});
  int elemKernels = 0;
  ProfileInfo prof = profile([&] {
    Tensor y = exec.execute({{"x", x}});
    test::expectValues(y, {8, 18});
    y.dispose();
  });
  for (const auto& k : prof.kernels) {
    elemKernels += k.name == "mul" || k.name == "add" ||
                   k.name == "fusedRegion";
  }
  EXPECT_EQ(elemKernels, 1);
  x.dispose();
}

TEST_F(GraphExecutorTest, PruneThenExecuteEndToEnd) {
  // The section 5.1 workflow: a training graph is pruned, and the surviving
  // inference graph executes to the same values the ops produce.
  GraphDef g;
  Tensor w = o::randomNormal(Shape{4, 2}, 0, 1, 6);
  g.nodes.push_back(node("x", "Placeholder", {}));
  g.nodes.push_back(node("w", "VariableV2", {}, w));
  g.nodes.push_back(node("logits", "MatMul", {"x", "w"}));
  g.nodes.push_back(node("probs", "Softmax", {"logits"}));
  g.nodes.push_back(node("grad", "Conv2DBackpropFilter", {"x", "logits"}));
  g.nodes.push_back(node("m", "VariableV2", {}, o::zeros(Shape{4, 2})));
  g.nodes.push_back(node("train", "ApplyAdam", {"w", "m", "grad"}));
  g.outputs = {"probs"};

  GraphDef pruned = io::pruneTrainingOps(g);
  EXPECT_EQ(pruned.nodes.size(), 4u);
  GraphExecutor exec(std::move(pruned));
  Tensor x = o::randomNormal(Shape{3, 4}, 0, 1, 7);
  Tensor got = exec.execute({{"x", x}});
  Tensor expected = o::softmax(o::matMul(x, w));
  test::expectClose(got, expected, 1e-5f);
  for (Tensor t : {x, got, expected}) t.dispose();
}

TEST_F(GraphExecutorTest, ReshapeMeanIdentity) {
  GraphDef g;
  Json reshapeAttrs;
  reshapeAttrs["shape"] =
      Json(io::JsonArray{Json(2), Json(-1)});
  Json meanAttrs;
  meanAttrs["axes"] = Json(io::JsonArray{Json(1)});
  g.nodes.push_back(node("x", "Placeholder", {}));
  g.nodes.push_back(node("r", "Reshape", {"x"}, Tensor(), reshapeAttrs));
  g.nodes.push_back(node("m", "Mean", {"r"}, Tensor(), meanAttrs));
  g.nodes.push_back(node("out", "Identity", {"m:0"}));
  g.outputs = {"out:0"};
  GraphExecutor exec(std::move(g));
  Tensor x = o::tensor({1, 2, 3, 4, 5, 6}, Shape{6});
  Tensor got = exec.execute({{"x", x}});
  test::expectValues(got, {2, 5});
  x.dispose();
  got.dispose();
}

TEST_F(GraphExecutorTest, ErrorPaths) {
  GraphDef g;
  g.nodes.push_back(node("x", "Placeholder", {}));
  g.nodes.push_back(node("bad", "SomeUnknownOp", {"x"}));
  g.nodes.push_back(node("loop", "Relu", {"loop"}));
  g.outputs = {"bad"};
  GraphExecutor exec(std::move(g));
  Tensor x = o::scalar(1);
  // Missing feed (evaluate the placeholder itself).
  const std::array<std::string, 1> xOut{"x"};
  EXPECT_THROW(exec.execute({}, xOut), InvalidArgumentError);
  // Unsupported op.
  EXPECT_THROW(exec.execute({{"x", x}}), UnimplementedError);
  // Cycle.
  const std::array<std::string, 1> loopOut{"loop"};
  EXPECT_THROW(exec.execute({{"x", x}}, loopOut), InvalidArgumentError);
  x.dispose();
}

TEST_F(GraphExecutorTest, RunsOnWebGLBackendToo) {
  GraphDef g;
  Tensor w = o::randomNormal(Shape{2, 2}, 0, 1, 8);
  g.nodes.push_back(node("x", "Placeholder", {}));
  g.nodes.push_back(node("w", "VariableV2", {}, w));
  g.nodes.push_back(node("y", "MatMul", {"x", "w"}));
  g.outputs = {"y"};
  GraphExecutor exec(std::move(g));

  Tensor x = o::tensor({1, 0, 0, 1}, Shape{2, 2});
  Tensor native = exec.execute({{"x", x}});
  setBackend("webgl");
  Tensor webgl = exec.execute({{"x", x}});
  test::expectClose(native, webgl, 1e-5f);
  setBackend("native");
  for (Tensor t : {x, native, webgl}) t.dispose();
}

TEST_F(GraphExecutorTest, NoLeaksAcrossExecutions) {
  GraphDef g;
  Tensor w = o::randomNormal(Shape{4, 4}, 0, 1, 9);
  g.nodes.push_back(node("x", "Placeholder", {}));
  g.nodes.push_back(node("w", "VariableV2", {}, w));
  g.nodes.push_back(node("h", "MatMul", {"x", "w"}));
  g.nodes.push_back(node("out", "Relu", {"h"}));
  g.outputs = {"out"};
  GraphExecutor exec(std::move(g));
  Tensor x = o::randomNormal(Shape{2, 4}, 0, 1, 10);
  exec.execute({{"x", x}}).dispose();  // warm-up
  const auto before = memory();
  for (int i = 0; i < 3; ++i) {
    Tensor y = exec.execute({{"x", x}});
    y.dispose();
  }
  EXPECT_EQ(memory().numTensors, before.numTensors);
  x.dispose();
}

}  // namespace
}  // namespace tfjs
