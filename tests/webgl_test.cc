// WebGL-sim backend tests — the paper's section 4.1 mechanisms, each
// exercised directly:
//  * E4 (Figure 4): element-wise add executed as a per-pixel fragment shader;
//  * logical→physical texture mapping and the squeezed-coordinate sampler;
//  * packing (RGBA texels) storage and cost accounting;
//  * E7: texture recycler; E8: GPU→CPU paging under a memory budget;
//  * E9: fp16 textures and the log(x + eps) underflow of section 4.1.3;
//  * async command queue: fences, async readback, blocking readPixels;
//  * time() semantics: kernelMs is device time excluding transfers.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "backends/webgl/tex_util.h"
#include "backends/webgl/webgl_backend.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "ops/ops.h"
#include "tests/test_util.h"

namespace tfjs {
namespace {

namespace o = ops;
using backends::webgl::GlTexture;
using backends::webgl::PhysShape;
using backends::webgl::TexConfig;
using backends::webgl::TexPrecision;
using backends::webgl::WebGLBackend;
using backends::webgl::WebGLOptions;

WebGLBackend& activeWebGL() {
  return dynamic_cast<WebGLBackend&>(Engine::get().backend());
}

class WebGLTest : public ::testing::Test {
 protected:
  void SetUp() override { setBackend("webgl"); }
};

// --------------------------------------------------- logical/physical layout

TEST_F(WebGLTest, PhysShapeMirrorsSqueezedLogicalShape) {
  using backends::webgl::tex_util::physShapeForLogical;
  // The paper's example: logical 1x3x1x2 -> physical 3x2 texture.
  PhysShape p = physShapeForLogical(Shape{1, 3, 1, 2}, /*packed=*/false);
  EXPECT_EQ(p.rows, 3);
  EXPECT_EQ(p.cols, 2);
  // Rank-1 maps to a single row.
  p = physShapeForLogical(Shape{128}, false);
  EXPECT_EQ(p.rows, 1);
  EXPECT_EQ(p.cols, 128);
  // Higher ranks without unit dims use a near-square layout.
  p = physShapeForLogical(Shape{8, 8, 8}, false);
  EXPECT_EQ(p.texels(), 529u);  // 23x23 >= 512
  EXPECT_LE(std::abs(p.rows - p.cols), 1);
}

TEST_F(WebGLTest, PhysShapeRespectsDeviceLimit) {
  using backends::webgl::tex_util::physShapeForLogical;
  // A [1, 5000] tensor exceeds the 4096 texel row limit -> near-square.
  PhysShape p = physShapeForLogical(Shape{1, 5000}, false);
  EXPECT_LE(p.cols, backends::webgl::tex_util::kMaxTextureSize);
  EXPECT_GE(p.texels(), 5000u);
}

TEST_F(WebGLTest, PackedTextureQuartersTexelCount) {
  using backends::webgl::tex_util::physShapeForSize;
  PhysShape unpacked = physShapeForSize(1024, false);
  PhysShape packed = physShapeForSize(1024, true);
  EXPECT_EQ(unpacked.texels(), 1024u);
  EXPECT_EQ(packed.texels(), 256u);
  // Packed RGBA texels are 16 B vs 4 B — same bytes per value, 4x fewer
  // texels (the sampler-efficiency win of section 3.9).
  GlTexture u(unpacked, TexConfig{false, TexPrecision::fp32});
  GlTexture q(packed, TexConfig{true, TexPrecision::fp32});
  EXPECT_EQ(u.gpuBytes(), q.gpuBytes());
}

// ----------------------------------------------------------- E4 / Figure 4

TEST_F(WebGLTest, Figure4ElementwiseAddRunsAsShader) {
  auto& backend = activeWebGL();
  const auto statsBefore = backend.gpuStats();
  Tensor a = o::tensor({1, 2, 3, 4, 5, 6}, Shape{2, 3});
  Tensor b = o::tensor({10, 20, 30, 40, 50, 60}, Shape{2, 3});
  Tensor c = o::add(a, b);
  test::expectValues(c, {11, 22, 33, 44, 55, 66});
  const auto statsAfter = backend.gpuStats();
  // Exactly one program ran, invoked per output value with 2 fetches each
  // (the GLSL main() of Figure 4).
  EXPECT_EQ(statsAfter.programsRun, statsBefore.programsRun + 1);
  EXPECT_EQ(statsAfter.texelFetches, statsBefore.texelFetches + 12);
  for (Tensor t : {a, b, c}) t.dispose();
}

TEST_F(WebGLTest, ShaderFetchCountMatchesListing2MatMul) {
  auto& backend = activeWebGL();
  Tensor a = o::randomNormal(Shape{4, 8}, 0, 1, 1);
  Tensor b = o::randomNormal(Shape{8, 3}, 0, 1, 2);
  const auto before = backend.gpuStats();
  Tensor c = o::matMul(a, b);
  c.dataSync();
  const auto after = backend.gpuStats();
  // Listing 2: each of the 4*3 outputs loops over K=8 sampling A and B.
  EXPECT_EQ(after.texelFetches - before.texelFetches, 4u * 3 * 8 * 2);
  for (Tensor t : {a, b, c}) t.dispose();
}

TEST_F(WebGLTest, ProgramCacheHitsOnRepeatedShapeClass) {
  auto& backend = activeWebGL();
  auto& hits = metrics::Registry::get().counter("webgl.shader_cache_hits");
  auto& misses = metrics::Registry::get().counter("webgl.shader_cache_misses");
  // A shape class no other test uses, so the first run must compile.
  const Shape shape{17, 13};
  Tensor x = o::randomNormal(shape, 0, 1, 5);
  Tensor y1 = o::relu(x);
  y1.dataSync();
  backend.flush();
  const auto missesAfterFirst = misses.value();
  const auto hitsAfterFirst = hits.value();
  EXPECT_GT(missesAfterFirst, 0u);
  // Same (op, shape-class, packed) signature: served from the program
  // cache, no recompilation.
  Tensor y2 = o::relu(x);
  y2.dataSync();
  backend.flush();
  EXPECT_GT(hits.value(), hitsAfterFirst)
      << "second run of the same shape class must hit the program cache";
  EXPECT_EQ(misses.value(), missesAfterFirst);
  for (Tensor t : {x, y1, y2}) t.dispose();
}

// ------------------------------------------------------------ E7: recycler

TEST_F(WebGLTest, TextureRecyclerReusesSameShapedTextures) {
  auto& backend = activeWebGL();
  // Warm up any internal allocations first.
  for (int i = 0; i < 2; ++i) {
    Tensor x = o::randomNormal(Shape{16, 16}, 0, 1, 3);
    Tensor y = o::relu(x);
    y.dataSync();
    x.dispose();
    y.dispose();
  }
  backend.flush();
  const auto before = backend.textureStats();
  // Repeated same-shape passes — the "multiple passes through the same ML
  // model" pattern of section 4.1.2.
  for (int i = 0; i < 10; ++i) {
    Tensor x = o::randomNormal(Shape{16, 16}, 0, 1, 4);
    Tensor y = o::relu(x);
    y.dataSync();
    x.dispose();
    y.dispose();
  }
  backend.flush();
  const auto after = backend.textureStats();
  EXPECT_EQ(after.texturesCreated, before.texturesCreated)
      << "same-shaped textures must be served from the recycler";
  EXPECT_GE(after.texturesRecycled, before.texturesRecycled + 20);
}

TEST_F(WebGLTest, RecyclerKeepsMemoryFlatAcrossModelPasses) {
  auto& backend = activeWebGL();
  Tensor w = o::randomNormal(Shape{32, 32}, 0, 1, 5);
  // Chained ops inside tidy — un-disposed intermediates (like the matMul
  // temporary) would otherwise leak, the exact hazard of section 3.7.
  auto pass = [&] {
    tidyVoid([&] {
      Tensor x = o::randomNormal(Shape{8, 32}, 0, 1, 6);
      Tensor out = o::sigmoid(o::relu(o::matMul(x, w)));
      out.dataSync();
    });
  };
  pass();
  pass();
  backend.flush();
  const std::size_t bytesBefore = backend.textureStats().gpuBytes;
  for (int i = 0; i < 20; ++i) pass();
  backend.flush();
  EXPECT_EQ(backend.textureStats().gpuBytes, bytesBefore)
      << "steady-state model passes must not grow GPU memory";
  w.dispose();
}

// -------------------------------------------------------------- E8: paging

TEST(WebGLPagingTest, PagesOutLeastRecentlyUsedTexturesOverBudget) {
  // Dedicated tiny-budget backend instance: 64 KB GPU budget, tensors of
  // 16 KB each; keeping 8 alive must page some out without data loss.
  backends::webgl::registerBackendVariant(
      "webgl-tiny",
      [] {
        WebGLOptions opts;
        opts.gpuBudgetBytes = 64 * 1024;
        return opts;
      }());
  setBackend("webgl-tiny");
  auto& backend = activeWebGL();

  std::vector<Tensor> tensors;
  for (int i = 0; i < 8; ++i) {
    Tensor t = o::fill(Shape{64, 64}, static_cast<float>(i));
    Tensor u = o::addScalar(t, 1);  // force device work on each texture
    u.dataSync();
    u.dispose();
    tensors.push_back(t);
  }
  backend.flush();
  const auto stats = backend.textureStats();
  EXPECT_GT(stats.pageOuts, 0u) << "exceeding the budget must page out";
  EXPECT_LE(stats.gpuBytes, 80u * 1024) << "resident set must respect budget";

  // Every tensor — including paged-out ones — reads back intact.
  for (int i = 0; i < 8; ++i) {
    const auto v = tensors[static_cast<std::size_t>(i)].dataSync();
    EXPECT_FLOAT_EQ(v[0], static_cast<float>(i));
    EXPECT_FLOAT_EQ(v.back(), static_cast<float>(i));
  }
  const auto after = backend.textureStats();
  EXPECT_GT(after.pageIns, 0u) << "touching paged tensors must page back in";
  for (auto& t : tensors) t.dispose();
  setBackend("native");
}

// ---------------------------------------------------------- E9: fp16 mode

TEST(WebGLFp16Test, EpsilonUnderflowReproducesIOSBug) {
  backends::webgl::registerBackendVariant(
      "webgl-fp16",
      [] {
        WebGLOptions opts;
        opts.precision = TexPrecision::fp16;
        return opts;
      }());
  setBackend("webgl-fp16");
  auto& backend = activeWebGL();
  EXPECT_FLOAT_EQ(backend.epsilon(), 1e-4f);

  // The paper's bug: log(x + 1e-8) with x = 0 under fp16. 1e-8 flushes to
  // zero in a 16-bit texture, so the add produces exactly 0 and log gives
  // -inf — where fp32 would give log(1e-8).
  Tensor x = o::tensor({0.f}, Shape{1});
  Tensor brokenEps = o::scalar(1e-8f);
  Tensor broken = o::log(o::add(x, brokenEps));
  EXPECT_TRUE(std::isinf(broken.dataSync()[0]));

  // The fix (section 4.1.3): adjust the global epsilon per device.
  Tensor fixedEps = o::scalar(backend.epsilon());
  Tensor fixed = o::log(o::add(x, fixedEps));
  EXPECT_TRUE(std::isfinite(fixed.dataSync()[0]));
  EXPECT_NEAR(fixed.dataSync()[0], std::log(1e-4f), 0.05f);

  for (Tensor t : {x, brokenEps, broken, fixedEps, fixed}) t.dispose();
  setBackend("native");
}

TEST(WebGLFp16Test, ValuesRoundThroughHalfPrecision) {
  setBackend("webgl-fp16");
  // 2049 is not representable in fp16 (11-bit mantissa): rounds to 2048.
  Tensor t = o::tensor({2049.f, 0.1f}, Shape{2});
  const auto v = t.dataSync();
  EXPECT_FLOAT_EQ(v[0], 2048.f);
  EXPECT_NEAR(v[1], 0.1f, 1e-4f);
  EXPECT_NE(v[1], 0.1f);  // 0.1 is inexact in fp16
  t.dispose();
  setBackend("native");
}

// --------------------------------------------------- async queue mechanics

TEST_F(WebGLTest, OpsReturnBeforeDeviceCompletes) {
  // tf.matMul is "purposefully synchronous and returns a tensor whose data
  // might not be computed yet" (section 3.6): enqueue must be far faster
  // than executing + reading back.
  Tensor a = o::randomNormal(Shape{128, 128}, 0, 1, 7);
  auto t0 = std::chrono::steady_clock::now();
  Tensor c = o::matMul(a, a);
  auto t1 = std::chrono::steady_clock::now();
  c.dataSync();  // forces the pipeline
  auto t2 = std::chrono::steady_clock::now();
  const double enqueueMs =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double totalMs =
      std::chrono::duration<double, std::milli>(t2 - t0).count();
  EXPECT_LT(enqueueMs, totalMs);
  a.dispose();
  c.dispose();
}

TEST_F(WebGLTest, AsyncDataResolvesWithCorrectValues) {
  Tensor a = o::tensor({1, 2, 3, 4}, Shape{4});
  Tensor b = o::mulScalar(a, 3);
  std::future<std::vector<float>> fut = b.data();
  const auto v = fut.get();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_FLOAT_EQ(v[3], 12);
  a.dispose();
  b.dispose();
}

TEST_F(WebGLTest, FencesRetireInOrder) {
  auto& backend = activeWebGL();
  Tensor x = o::randomNormal(Shape{64, 64}, 0, 1, 8);
  Tensor y = o::matMul(x, x);
  auto fence = backend.context().insertFence();
  fence.wait();
  // The fence retired, so the matmul before it must have executed.
  const auto stats = backend.gpuStats();
  EXPECT_GE(stats.programsRun, 1u);
  EXPECT_GE(stats.fences, 1u);
  x.dispose();
  y.dispose();
}

TEST_F(WebGLTest, ManyQueuedOpsDrainCorrectly) {
  // Stress ordering: a dependent chain of 100 adds through the queue.
  Tensor acc = o::scalar(0);
  for (int i = 1; i <= 100; ++i) {
    Tensor next = o::addScalar(acc, 1);
    acc.dispose();
    acc = next;
  }
  EXPECT_FLOAT_EQ(acc.scalarSync(), 100);
  acc.dispose();
}

// ------------------------------------------------------- timing semantics

TEST_F(WebGLTest, KernelTimeExcludesUploadAndDownload) {
  auto& backend = activeWebGL();
  // Pure upload + readback: no programs, so kernel (GPU) time must not move.
  const double kernelBefore = backend.kernelTimeMs();
  Tensor t = o::tensor(std::vector<float>(4096, 1.f), Shape{4096});
  t.dataSync();
  const double kernelAfter = backend.kernelTimeMs();
  EXPECT_DOUBLE_EQ(kernelBefore, kernelAfter);
  // ...but transfer stats do.
  EXPECT_GT(backend.gpuStats().uploadTimeMs, 0);
  EXPECT_GT(backend.gpuStats().readbackTimeMs, 0);
  t.dispose();
}

TEST_F(WebGLTest, TimeReportsModeledDeviceTime) {
  Tensor a = o::randomNormal(Shape{64, 64}, 0, 1, 9);
  TimingInfo t = time([&] {
    Tensor c = o::matMul(a, a);
    c.dispose();
  });
  // Modeled device time: at least the dispatch overhead of one program.
  EXPECT_GE(t.kernelMs,
            activeWebGL().context().device().dispatchOverheadMs * 0.99);
  a.dispose();
}

// ------------------------------------------------------ device cost model

TEST(WebGLDeviceModelTest, CudaBeatsWebGLOnReusablePrograms) {
  using namespace backends::webgl;
  ProgramCost matmulCost;
  matmulCost.invocations = 224 * 224;
  matmulCost.flopsPerInvocation = 2 * 512;
  matmulCost.fetchesPerInvocation = 2 * 512;
  matmulCost.reusable = true;
  const double webglMs = gtx1080WebGL().timeMs(matmulCost, false);
  const double cudaMs = gtx1080Cuda().timeMs(matmulCost, false);
  // The paper reports a 3-10x WebGL-vs-CUDA gap on the same silicon.
  EXPECT_GT(webglMs / cudaMs, 2.0);
  EXPECT_LT(webglMs / cudaMs, 20.0);
}

TEST(WebGLDeviceModelTest, DispatchOverheadDominatesTinyPrograms) {
  using namespace backends::webgl;
  ProgramCost tiny;
  tiny.invocations = 4;
  tiny.flopsPerInvocation = 1;
  tiny.fetchesPerInvocation = 2;
  const DeviceModel dev = irisProWebGL();
  EXPECT_NEAR(dev.timeMs(tiny, false), dev.dispatchOverheadMs, 1e-4);
}

}  // namespace
}  // namespace tfjs
