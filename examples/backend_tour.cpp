// Backend tour: the same computation on every backend (paper Figure 1's
// three environments), plus the debugging toolkit of section 3.8 —
// time(f), profile(f), memory(), and the async data() vs blocking
// dataSync() distinction of section 3.6.
//
// Build & run:  ./build/examples/backend_tour
#include <cstdio>

#include "backends/register.h"
#include "backends/webgl/webgl_backend.h"
#include "core/event_loop.h"
#include "ops/ops.h"

namespace o = tfjs::ops;

int main() {
  tfjs::backends::registerAll();

  std::printf("registered backends:");
  for (const auto& name : tfjs::Engine::get().registeredBackends()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n== the same matmul on every backend ==\n");

  for (const char* name : {"cpu", "native", "webgl"}) {
    tfjs::setBackend(name);
    tfjs::Tensor a = o::randomNormal(tfjs::Shape{256, 256}, 0, 1, 1);
    tfjs::TimingInfo t = tfjs::time([&] {
      tfjs::Tensor c = o::matMul(a, a);
      c.dataSync();
      c.dispose();
    });
    std::printf("  %-7s %s%s\n", name, t.toString().c_str(),
                std::string(name) == "webgl" ? "  (modeled device time)" : "");
    a.dispose();
  }

  std::printf("\n== profile(f): per-kernel records (section 3.8) ==\n");
  tfjs::setBackend("native");
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{64, 64}, 0, 1, 2);
  tfjs::ProfileInfo prof = tfjs::profile([&] {
    tfjs::tidyVoid([&] {
      tfjs::Tensor h = o::relu(o::matMul(x, x));
      tfjs::Tensor s = o::softmax(h);
      s.dataSync();
    });
  });
  std::printf("%s", prof.toString().c_str());
  x.dispose();

  std::printf("\n== debug mode: NaN tracing ==\n");
  tfjs::Engine::get().setDebugMode(true);
  try {
    // tidy cleans up even though the NaN check throws mid-expression.
    tfjs::tidyVoid([] {
      tfjs::Tensor bad = o::log(o::tensor({-1.f}, tfjs::Shape{1}));
      (void)bad;
    });
  } catch (const tfjs::NumericError& e) {
    std::printf("  caught: %s\n", e.what());
  }
  tfjs::Engine::get().setDebugMode(false);

  std::printf("\n== dataSync vs data() on the simulated main thread ==\n");
  tfjs::setBackend("webgl");
  tfjs::Tensor big = o::randomNormal(tfjs::Shape{192, 192}, 0, 1, 3);
  for (const bool async : {false, true}) {
    tfjs::async::EventLoop loop(60);
    loop.onFrame([](int) {});
    std::future<std::vector<float>> pending;
    loop.postTask([&] {
      tfjs::Tensor c = o::matMul(big, big);
      if (async) {
        pending = c.data();  // promise resolves off the main thread
      } else {
        c.dataSync();  // blocks the main thread until the GPU finishes
      }
      c.dispose();
    });
    tfjs::async::FrameStats stats = loop.run(120);
    if (async && pending.valid()) pending.get();
    std::printf("  %-9s frames on-time %d/%d, max stall %.1f ms\n",
                async ? "data()" : "dataSync", stats.framesOnTime,
                stats.framesScheduled, stats.maxStallMs);
  }
  big.dispose();
  std::printf("\nlive tensors at exit: %zu\n", tfjs::memory().numTensors);
  return 0;
}
