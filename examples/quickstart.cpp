// Quickstart — the paper's Listing 1, line for line:
//
//   const model = tf.sequential();
//   model.add(tf.layers.dense({units: 1, inputShape: [1]}));
//   model.compile({loss: 'meanSquaredError', optimizer: 'sgd'});
//   const xs = tf.tensor2d([1, 2, 3, 4], [4, 1]);
//   const ys = tf.tensor2d([1, 3, 5, 7], [4, 1]);
//   model.fit(xs, ys).then(() => {
//     model.predict(tf.tensor2d([5], [1, 1])).print();
//   });
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "backends/register.h"
#include "layers/core_layers.h"
#include "layers/sequential.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
namespace L = tfjs::layers;

int main() {
  tfjs::backends::registerAll();
  std::printf("backend: %s\n", tfjs::getBackendName().c_str());

  // A linear model with 1 dense layer.
  auto model = tfjs::sequential("quickstart");
  L::DenseOptions dense;
  dense.units = 1;
  model->add(std::make_shared<L::Dense>(dense));

  // Specify the loss and the optimizer.
  L::CompileOptions compile;
  compile.loss = "meanSquaredError";
  compile.optimizer = "sgd";
  compile.learningRate = 0.1f;
  model->compile(compile);

  // Generate synthetic data to train: y = 2x - 1.
  tfjs::Tensor xs = o::tensor({1, 2, 3, 4}, tfjs::Shape{4, 1});
  tfjs::Tensor ys = o::tensor({1, 3, 5, 7}, tfjs::Shape{4, 1});

  // Train the model using the data.
  L::FitOptions fit;
  fit.epochs = 200;
  fit.batchSize = 4;
  L::History history = model->fit(xs, ys, fit);
  std::printf("loss: %.6f -> %.6f over %d epochs\n", history.loss.front(),
              history.loss.back(), fit.epochs);

  // Do inference on an unseen data point and print the result.
  tfjs::Tensor x = o::tensor({5.f}, tfjs::Shape{1, 1});
  tfjs::Tensor prediction = model->predict(x);
  prediction.print();  // ~[9]: the model learned y = 2x - 1

  // Explicit memory management (section 3.7).
  for (tfjs::Tensor t : {xs, ys, x, prediction}) t.dispose();
  model->dispose();
  std::printf("live tensors after dispose: %zu\n",
              tfjs::memory().numTensors);
  return 0;
}
