// PoseNet demo — the paper's Listing 3: the hosted-model wrapper API takes a
// plain image and returns a human-friendly pose object; no tensors appear.
//
//   posenet.estimateSinglePose(imageElement)
//       .then(pose => console.log(pose));
//
// Build & run:  ./build/examples/posenet_demo
#include <cstdio>

#include "backends/register.h"
#include "data/synthetic.h"
#include "models/posenet.h"

int main() {
  tfjs::backends::registerAll();
  tfjs::setBackend("webgl");  // in-browser configuration
  std::printf("backend: %s\n", tfjs::getBackendName().c_str());

  // The HTMLImageElement stand-in: a synthetic 240x180 "photo" with a
  // bright subject blob (see DESIGN.md substitutions).
  tfjs::data::Image person = tfjs::data::makeTestImage(
      /*height=*/240, /*width=*/180, /*blobY=*/90, /*blobX=*/95);

  tfjs::models::PoseNet posenet;

  // Estimate a single pose from the image.
  tfjs::models::Pose pose = posenet.estimateSinglePose(person);

  // Console output in the Listing-3 format.
  std::printf("%s\n", pose.toJsonString().c_str());
  std::printf("\noverall score: %.3f, keypoints: %zu\n", pose.score,
              pose.keypoints.size());
  return 0;
}
