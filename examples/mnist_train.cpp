// In-framework training (the paper's headline differentiator: "the ability
// to author and train models directly in JS, rather than simply being an
// execution environment for models authored in Python").
//
// Trains a small CNN on a synthetic MNIST-like dataset with Adam +
// categorical cross-entropy, reports per-epoch loss/accuracy, then saves and
// reloads the model to show the section 5.1 persistence path.
//
// Build & run:  ./build/examples/mnist_train
#include <cstdio>
#include <filesystem>

#include "backends/register.h"
#include "data/synthetic.h"
#include "io/model_io.h"
#include "layers/conv_layers.h"
#include "layers/core_layers.h"
#include "layers/sequential.h"

namespace L = tfjs::layers;

int main() {
  tfjs::backends::registerAll();
  tfjs::setBackend("native");

  const int kClasses = 4;
  auto train = tfjs::data::makeSyntheticDigits(/*numExamples=*/320,
                                               /*size=*/12, kClasses,
                                               /*noiseStddev=*/0.3f,
                                               /*seed=*/1);
  auto test = tfjs::data::makeSyntheticDigits(80, 12, kClasses, 0.3f,
                                              /*seed=*/2);

  auto model = tfjs::sequential("mnist_cnn");
  {
    L::Conv2DOptions c;
    c.filters = 8;
    c.kernelH = c.kernelW = 3;
    c.padding = "same";
    c.activation = "relu";
    model->add(std::make_shared<L::Conv2D>(c));
  }
  model->add(std::make_shared<L::MaxPooling2D>());
  {
    L::Conv2DOptions c;
    c.filters = 16;
    c.kernelH = c.kernelW = 3;
    c.padding = "same";
    c.activation = "relu";
    model->add(std::make_shared<L::Conv2D>(c));
  }
  model->add(std::make_shared<L::MaxPooling2D>());
  model->add(std::make_shared<L::Flatten>());
  model->add(std::make_shared<L::Dropout>(0.25f));
  {
    L::DenseOptions d;
    d.units = kClasses;
    d.activation = "softmax";
    model->add(std::make_shared<L::Dense>(d));
  }

  L::CompileOptions compile;
  compile.optimizer = "adam";
  compile.learningRate = 0.005f;
  compile.loss = "categoricalCrossentropy";
  compile.metrics = {"accuracy"};
  model->compile(compile);

  model->build(tfjs::Shape{1, 12, 12, 1});
  std::printf("%s\n", model->summary().c_str());

  L::FitOptions fit;
  fit.epochs = 8;
  fit.batchSize = 32;
  fit.validationSplit = 0.2f;
  L::History h = model->fit(train.images, train.labels, fit);
  for (std::size_t e = 0; e < h.loss.size(); ++e) {
    std::printf("epoch %zu: loss %.4f acc %.3f val_loss %.4f\n", e + 1,
                h.loss[e], h.metrics[0][e], h.valLoss[e]);
  }

  L::EvalResult eval = model->evaluate(test.images, test.labels);
  std::printf("\nheld-out: loss %.4f accuracy %.3f\n", eval.loss,
              eval.metrics[0]);

  // Persist and reload (section 5.1); accuracy must survive the round trip.
  const std::string dir = "/tmp/tfjs_cpp_mnist_model";
  std::filesystem::remove_all(dir);
  tfjs::io::saveModel(*model, tfjs::Shape{1, 12, 12, 1}, dir);
  auto reloaded = tfjs::io::loadModel(dir);
  reloaded->compile(compile);
  L::EvalResult evalReloaded = reloaded->evaluate(test.images, test.labels);
  std::printf("reloaded model accuracy: %.3f (saved to %s)\n",
              evalReloaded.metrics[0], dir.c_str());

  train.dispose();
  test.dispose();
  model->dispose();
  reloaded->dispose();
  return eval.metrics[0] > 0.9f ? 0 : 1;
}
