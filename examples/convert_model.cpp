// The model converter workflow (paper section 5.1): "the user runs a Python
// script that converts the existing format to the TensorFlow.js web format.
// TensorFlow.js optimizes the model by pruning unnecessary operations (e.g.
// training operations) and packs weights into 4MB files ... The user can
// also quantize the weights, reducing the model size by 4X."
//
// This example plays both roles: it constructs a SavedModel-like training
// graph (inference path + Adam update subgraph + checkpoint saver), runs the
// converter, and prints what was pruned, how the weights were sharded, and
// what quantization saved.
//
// Build & run:  ./build/examples/convert_model
#include <cstdio>

#include "backends/register.h"
#include "io/converter.h"
#include "io/graph_executor.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using tfjs::io::GraphDef;
using tfjs::io::GraphNode;
using tfjs::io::Json;

namespace {

/// A conv-net training graph the way a SavedModel export looks: every
/// weight has an Adam slot pair, gradients, update ops and a saver.
GraphDef buildTrainingGraph() {
  GraphDef g;
  auto var = [&](const std::string& name, const tfjs::Shape& shape) {
    g.nodes.push_back(
        {name, "VariableV2", {}, o::randomNormal(shape, 0, 0.5f, 1)});
  };
  auto op = [&](const std::string& name, const std::string& type,
                std::vector<std::string> inputs, Json attrs = Json()) {
    g.nodes.push_back(
        {name, type, std::move(inputs), tfjs::Tensor(), std::move(attrs)});
  };
  Json samePad;
  samePad["padding"] = "SAME";
  Json globalPool;
  globalPool["axes"] = Json(tfjs::io::JsonArray{Json(1), Json(2)});

  op("input", "Placeholder", {});
  var("conv1/w", tfjs::Shape{3, 3, 3, 16});
  op("conv1", "Conv2D", {"input", "conv1/w"}, samePad);
  op("relu1", "Relu", {"conv1"});
  var("conv2/w", tfjs::Shape{3, 3, 16, 32});
  op("conv2", "Conv2D", {"relu1", "conv2/w"}, samePad);
  op("relu2", "Relu", {"conv2"});
  op("pool", "Mean", {"relu2"}, globalPool);
  var("fc/w", tfjs::Shape{32, 10});
  op("logits", "MatMul", {"pool", "fc/w"});
  op("probs", "Softmax", {"logits"});

  // Training-only subgraph.
  op("labels", "Placeholder", {});
  op("xent", "SoftmaxCrossEntropyWithLogits", {"logits", "labels"});
  for (const char* w : {"conv1/w", "conv2/w", "fc/w"}) {
    const std::string base(w);
    op("grads/" + base, "Conv2DBackpropFilter", {"input", "xent"});
    var("adam/" + base + "/m", tfjs::Shape{4});
    var("adam/" + base + "/v", tfjs::Shape{4});
    op("train/" + base, "ApplyAdam",
       {base, "adam/" + base + "/m", "adam/" + base + "/v", "grads/" + base});
  }
  op("save", "SaveV2", {"conv1/w", "conv2/w", "fc/w"});
  g.outputs = {"probs"};
  return g;
}

}  // namespace

int main() {
  tfjs::backends::registerAll();
  tfjs::setBackend("native");

  GraphDef graph = buildTrainingGraph();
  std::printf("input graph: %zu nodes, output node: %s\n",
              graph.nodes.size(), graph.outputs[0].c_str());

  for (auto quant : {tfjs::io::Quantization::kNone,
                     tfjs::io::Quantization::kUint8}) {
    tfjs::io::ConvertStats stats;
    tfjs::io::WeightsManifest manifest = tfjs::io::convertGraph(
        graph, quant, /*maxShardBytes=*/4 * 1024, &stats);
    std::printf("\n-- convert (quantization=%s) --\n",
                tfjs::io::quantizationName(quant));
    std::printf("nodes:   %zu -> %zu (pruned %zu training/saver nodes)\n",
                stats.nodesBefore, stats.nodesAfter,
                stats.nodesBefore - stats.nodesAfter);
    std::printf("weights: %zu -> %zu bytes in %zu shards (max 4 KB each)\n",
                stats.weightsBytesBefore, stats.weightsBytesAfter,
                stats.shards);
    std::printf("surviving weights:");
    for (const auto& spec : manifest.specs) {
      std::printf(" %s%s", spec.name.c_str(),
                  &spec == &manifest.specs.back() ? "\n" : ",");
    }
  }

  // The other half of section 5.1: execute the pruned SavedModel graph.
  tfjs::io::GraphExecutor executor(tfjs::io::pruneTrainingOps(graph));
  tfjs::Tensor img = o::randomNormal(tfjs::Shape{1, 8, 8, 3}, 0, 1, 42);
  tfjs::Tensor probs = executor.execute({{"input", img}});
  const auto p = probs.dataSync();
  float sum = 0;
  int best = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    sum += p[i];
    if (p[i] > p[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
  }
  std::printf("\nexecuted pruned graph: %zu class probs (sum %.4f), "
              "top class %d (p=%.3f)\n", p.size(), sum, best,
              p[static_cast<std::size_t>(best)]);
  img.dispose();
  probs.dispose();

  std::printf("\nThe inference weights survive; Adam slots, gradients and "
              "the saver are gone — tf.loadModel() fetches only what "
              "prediction needs.\n");
  return 0;
}
