// Transfer learning (paper section 5.2): "For expert users ... these models
// can be used in a transfer learning setting, enabling personalized
// applications with on-device training with relatively little user data."
//
// A headless MobileNet acts as a frozen feature extractor (the tensor-level
// escape hatch of the model wrappers); a small dense head is trained on a
// handful of "user-collected" images per class — the Teachable-Machine
// recipe from section 6.1.
//
// Build & run:  ./build/examples/transfer_learning
#include <cstdio>
#include <vector>

#include "backends/register.h"
#include "data/synthetic.h"
#include "layers/core_layers.h"
#include "layers/sequential.h"
#include "models/mobilenet.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
namespace L = tfjs::layers;

int main() {
  tfjs::backends::registerAll();
  tfjs::setBackend("native");

  // Frozen backbone: MobileNet 0.25 @ 64, no classification head.
  tfjs::models::MobileNetOptions mn;
  mn.alpha = 0.25f;
  mn.inputSize = 64;
  mn.includeTop = false;
  tfjs::models::MobileNetClassifier backbone(mn);

  // "Webcam samples": 3 classes distinguished by blob position; 8 shots per
  // class — little user data, as the paper stresses.
  const int kClasses = 3, kShotsPerClass = 8;
  const float blobAt[kClasses][2] = {{16, 16}, {16, 48}, {48, 32}};
  std::vector<tfjs::Tensor> featureRows;
  std::vector<float> labels;
  for (int cls = 0; cls < kClasses; ++cls) {
    for (int shot = 0; shot < kShotsPerClass; ++shot) {
      tfjs::data::Image img = tfjs::data::makeTestImage(
          64, 64, blobAt[cls][0], blobAt[cls][1],
          /*seed=*/static_cast<std::uint64_t>(cls * 100 + shot));
      tfjs::Tensor feats = backbone.infer(img);  // [1, h, w, c]
      featureRows.push_back(
          feats.reshape(tfjs::Shape{1, static_cast<int>(feats.size())}));
      feats.dispose();
      for (int c = 0; c < kClasses; ++c) labels.push_back(c == cls ? 1 : 0);
    }
  }
  tfjs::Tensor x = o::concat(featureRows, 0);
  for (auto& t : featureRows) t.dispose();
  tfjs::Tensor y = o::tensor(labels,
                             tfjs::Shape{kClasses * kShotsPerClass, kClasses});
  std::printf("feature matrix: %s\n", x.shape().toString().c_str());

  // Personalized head trained on-device.
  auto head = tfjs::sequential("personal_head");
  L::DenseOptions d1;
  d1.units = 16;
  d1.activation = "relu";
  head->add(std::make_shared<L::Dense>(d1));
  L::DenseOptions d2;
  d2.units = kClasses;
  d2.activation = "softmax";
  head->add(std::make_shared<L::Dense>(d2));
  L::CompileOptions c;
  c.optimizer = "adam";
  c.learningRate = 0.01f;
  c.loss = "categoricalCrossentropy";
  c.metrics = {"accuracy"};
  head->compile(c);

  L::FitOptions fit;
  fit.epochs = 20;
  fit.batchSize = 8;
  L::History h = head->fit(x, y, fit);
  std::printf("head training: loss %.4f -> %.4f, accuracy %.3f\n",
              h.loss.front(), h.loss.back(), h.metrics[0].back());

  // Classify an unseen shot of class 2.
  tfjs::data::Image probe = tfjs::data::makeTestImage(64, 64, 48, 32,
                                                      /*seed=*/999);
  tfjs::Tensor probeFeats = backbone.infer(probe);
  tfjs::Tensor row = probeFeats.reshape(
      tfjs::Shape{1, static_cast<int>(probeFeats.size())});
  tfjs::Tensor probs = head->predict(row);
  const auto p = probs.dataSync();
  std::printf("unseen class-2 probe -> probabilities:");
  for (float v : p) std::printf(" %.3f", v);
  std::printf("\n");
  const bool correct = p[2] >= p[0] && p[2] >= p[1];
  std::printf("predicted class %s\n", correct ? "2 (correct)" : "(wrong)");

  for (tfjs::Tensor t : {x, y, probeFeats, row, probs}) t.dispose();
  head->dispose();
  return correct ? 0 : 1;
}
