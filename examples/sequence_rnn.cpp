// Sequence modelling with an LSTM, trained in-framework — the
// "Next Word Predictor"-class community application of paper section 6.1,
// built directly on the Layers API.
//
// Task: next-token prediction over a tiny cyclic "language" (period-4 token
// pattern with noise tokens). The model embeds tokens (one-hot), runs an
// LSTM, and predicts the next token; after training, generation follows the
// learned cycle.
//
// Build & run:  ./build/examples/sequence_rnn
#include <cstdio>
#include <vector>

#include "backends/register.h"
#include "core/random.h"
#include "layers/core_layers.h"
#include "layers/rnn_layers.h"
#include "layers/sequential.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
namespace L = tfjs::layers;

namespace {
constexpr int kVocab = 4;
constexpr int kSteps = 6;

/// The "language": token t is followed by (t + 1) % kVocab.
int nextToken(int t) { return (t + 1) % kVocab; }
}  // namespace

int main() {
  tfjs::backends::registerAll();
  tfjs::setBackend("native");

  // Build sequences of one-hot tokens; the label is the token after the
  // window.
  tfjs::Random rng(7);
  const int n = 256;
  std::vector<float> xs(static_cast<std::size_t>(n) * kSteps * kVocab, 0.f);
  std::vector<float> ys(static_cast<std::size_t>(n) * kVocab, 0.f);
  for (int i = 0; i < n; ++i) {
    int tok = static_cast<int>(rng.below(kVocab));
    for (int s = 0; s < kSteps; ++s) {
      xs[(static_cast<std::size_t>(i) * kSteps + s) * kVocab + tok] = 1.f;
      tok = nextToken(tok);
    }
    ys[static_cast<std::size_t>(i) * kVocab + tok] = 1.f;
  }
  tfjs::Tensor x = o::tensor(xs, tfjs::Shape{n, kSteps, kVocab});
  tfjs::Tensor y = o::tensor(ys, tfjs::Shape{n, kVocab});

  auto model = tfjs::sequential("next_token_lstm");
  L::RNNOptions r;
  r.units = 16;
  model->add(std::make_shared<L::LSTM>(r));
  L::DenseOptions d;
  d.units = kVocab;
  d.activation = "softmax";
  model->add(std::make_shared<L::Dense>(d));

  L::CompileOptions c;
  c.optimizer = "adam";
  c.learningRate = 0.02f;
  c.loss = "categoricalCrossentropy";
  c.metrics = {"accuracy"};
  model->compile(c);

  L::FitOptions fit;
  fit.epochs = 6;
  fit.batchSize = 32;
  L::History h = model->fit(x, y, fit);
  std::printf("training: loss %.4f -> %.4f, accuracy %.3f\n", h.loss.front(),
              h.loss.back(), h.metrics[0].back());

  // Generate: seed with token 0's window, repeatedly predict and shift.
  std::printf("generated continuation from token 0: ");
  std::vector<int> window(kSteps);
  for (int s = 0; s < kSteps; ++s) window[static_cast<std::size_t>(s)] = s % kVocab;
  bool allCorrect = true;
  int expected = kSteps % kVocab;
  for (int g = 0; g < 8; ++g) {
    std::vector<float> wx(static_cast<std::size_t>(kSteps) * kVocab, 0.f);
    for (int s = 0; s < kSteps; ++s) {
      wx[static_cast<std::size_t>(s) * kVocab +
         static_cast<std::size_t>(window[static_cast<std::size_t>(s)])] = 1.f;
    }
    tfjs::Tensor input = o::tensor(wx, tfjs::Shape{1, kSteps, kVocab});
    tfjs::Tensor probs = model->predict(input);
    tfjs::Tensor arg = o::argMax(probs, -1);
    const int predicted = static_cast<int>(arg.dataSync()[0]);
    std::printf("%d ", predicted);
    allCorrect &= predicted == expected;
    expected = nextToken(expected);
    window.erase(window.begin());
    window.push_back(predicted);
    for (tfjs::Tensor t : {input, probs, arg}) t.dispose();
  }
  std::printf("\npattern followed: %s\n", allCorrect ? "yes" : "no");

  x.dispose();
  y.dispose();
  model->dispose();
  return allCorrect ? 0 : 1;
}
