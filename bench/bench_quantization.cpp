// E10 — weight quantization (paper section 5.1): "The user can also
// quantize the weights, reducing the model size by 4X."
//
// Two sections, both written to BENCH_quant.json:
//  * transport — MobileNet weights serialized at fp32 / uint16 / uint8 /
//    int8; reported: total manifest bytes (the 4x claim), shard counts under
//    the 4 MB limit (E11), worst-case dequantization error, and top-1
//    prediction agreement between the full-precision and quantized models.
//  * execution — the paper stops at transport (weights are dequantized to
//    f32 before running); the int8 path here executes quantized. Wall time
//    per inference (bench_table1 methodology: predict + dataSync, averaged
//    over runs after a warm-up) f32 vs int8 on MobileNet 1.0_224 (the
//    BENCH_table1 native row), MobileNet 0.25_32, and the serving MLP
//    tower, with max abs output error and top-1 agreement.
//
// Gate (ISSUE 7): int8 MobileNet 1.0_224 >= 2x faster than the measured f32
// native row with < 1% top-1 disagreement on the synthetic eval.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>

#include "backends/register.h"
#include "bench/json_out.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "io/model_io.h"
#include "layers/core_layers.h"
#include "layers/quantize.h"
#include "models/mobilenet.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using tfjs::Shape;
using tfjs::Tensor;
using tfjs::layers::Sequential;

namespace {

/// Top-1 agreement between two models over n synthetic images.
double agreement(Sequential& a, Sequential& b, int inputSize, int n) {
  int same = 0;
  for (int i = 0; i < n; ++i) {
    tfjs::data::Image img = tfjs::data::makeTestImage(
        inputSize, inputSize, static_cast<float>(8 + (i * 7) % inputSize),
        static_cast<float>(5 + (i * 13) % inputSize),
        static_cast<std::uint64_t>(i));
    Tensor x = tfjs::data::fromPixels(img);
    Tensor pa = a.predict(x);
    Tensor pb = b.predict(x);
    Tensor ia = o::argMax(pa, -1);
    Tensor ib = o::argMax(pb, -1);
    same += ia.dataSync()[0] == ib.dataSync()[0];
    for (Tensor t : {x, pa, pb, ia, ib}) t.dispose();
  }
  return static_cast<double>(same) / n;
}

/// Weight values for error comparison: int8 weights are dequantized first so
/// the comparison is in real units, not codes.
std::vector<float> realValues(const Tensor& w) {
  if (w.dtype() != tfjs::DType::i8 || w.quantParams() == nullptr) {
    return w.dataSync();
  }
  Tensor d = o::dequantize(w);
  std::vector<float> v = d.dataSync();
  d.dispose();
  return v;
}

// ------------------------------------------------------------- execution

/// bench_table1 methodology: wall ms of predict + dataSync, averaged over
/// `runs` after one warm-up inference.
double inferMs(Sequential& model, const Tensor& x, int runs) {
  auto once = [&] {
    return tfjs::time([&] {
      Tensor y = model.predict(x);
      y.dataSync();
      y.dispose();
    });
  };
  once();  // warm-up: builds weights, primes pools and packed-weight caches
  double sum = 0;
  for (int i = 0; i < runs; ++i) sum += once().wallMs;
  return sum / runs;
}

/// Max abs difference between the two models' outputs on one input.
double maxOutputError(Sequential& a, Sequential& b, const Tensor& x) {
  Tensor ya = a.predict(x);
  Tensor yb = b.predict(x);
  const auto va = ya.dataSync();
  const auto vb = yb.dataSync();
  double err = 0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    err = std::max(err, static_cast<double>(std::fabs(va[i] - vb[i])));
  }
  ya.dispose();
  yb.dispose();
  return err;
}

struct ExecResult {
  double f32Ms = 0;
  double int8Ms = 0;
  double maxAbsErr = 0;
  double top1Agree = 1.0;
  int kernelsQuantized = 0;
  double speedup() const { return int8Ms > 0 ? f32Ms / int8Ms : 0; }
};

/// Times an f32 model against its int8-quantized twin (identical layer
/// names draw bit-identical weights) on one input shape.
ExecResult execCompare(std::unique_ptr<Sequential> f32Model,
                       std::unique_ptr<Sequential> int8Model,
                       const Shape& inputShape, int runs, int agreeImages,
                       int agreeSize) {
  f32Model->build(inputShape);
  int8Model->build(inputShape);
  ExecResult r;
  r.kernelsQuantized = tfjs::layers::quantizeWeightsInt8(*int8Model);

  Tensor x = o::randomNormal(inputShape, 0, 1, 7);
  r.f32Ms = inferMs(*f32Model, x, runs);
  r.int8Ms = inferMs(*int8Model, x, runs);
  r.maxAbsErr = maxOutputError(*f32Model, *int8Model, x);
  if (agreeImages > 0) {
    r.top1Agree = agreement(*f32Model, *int8Model, agreeSize, agreeImages);
  }
  x.dispose();
  f32Model->dispose();
  int8Model->dispose();
  return r;
}

std::unique_ptr<Sequential> buildTower() {
  auto m = std::make_unique<Sequential>("tower");
  for (int i = 0; i < 32; ++i) {
    tfjs::layers::DenseOptions d;
    d.units = 32;
    d.activation = "relu";
    d.name = "fc" + std::to_string(i);
    m->add(std::make_shared<tfjs::layers::Dense>(d));
  }
  tfjs::layers::DenseOptions head;
  head.units = 10;
  head.activation = "softmax";
  head.name = "head";
  m->add(std::make_shared<tfjs::layers::Dense>(head));
  return m;
}

tfjs::bench::Json execJson(const char* workload, const ExecResult& r) {
  tfjs::bench::Json j = tfjs::bench::Json::object();
  j.set("workload", workload);
  j.set("f32_ms", r.f32Ms);
  j.set("int8_ms", r.int8Ms);
  j.set("speedup", r.speedup());
  j.set("max_abs_output_err", r.maxAbsErr);
  j.set("top1_agreement", r.top1Agree);
  j.set("kernels_quantized", r.kernelsQuantized);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();
  tfjs::setBackend("native");

  // --fast trims the 1.0_224 run count for smoke runs.
  int bigRuns = 10, bigAgree = 25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      bigRuns = 2;
      bigAgree = 5;
    }
  }

  tfjs::bench::Json doc = tfjs::bench::Json::object();
  doc.set("bench", "quantization");
  doc.set("backend", "native");
  tfjs::bench::Json machine = tfjs::bench::Json::object();
  machine.set("hardware_concurrency",
              static_cast<int>(std::thread::hardware_concurrency()));
  doc.set("machine", std::move(machine));

  // ---------------------------------------------------------- transport
  tfjs::models::MobileNetOptions mn;
  mn.alpha = 0.5f;
  mn.inputSize = 64;
  mn.numClasses = 100;
  auto model = tfjs::models::buildMobileNetV1(mn);
  const Shape inputShape{1, mn.inputSize, mn.inputSize, 3};
  model->build(inputShape);

  std::printf("== Quantization (section 5.1): MobileNet %.2f_%d, %zu params "
              "==\n\n", mn.alpha, mn.inputSize, model->countParams());
  std::printf("%-10s %14s %8s %16s %16s\n", "format", "weight bytes",
              "shards", "max |error|", "top-1 agreement");

  tfjs::bench::Json transport = tfjs::bench::Json::array();
  using tfjs::io::Quantization;
  for (Quantization q : {Quantization::kNone, Quantization::kUint16,
                         Quantization::kUint8, Quantization::kInt8}) {
    tfjs::io::SaveOptions save;
    save.quantization = q;
    tfjs::io::ModelArtifacts artifacts =
        tfjs::io::serializeModel(*model, inputShape, save);
    auto loaded = tfjs::io::deserializeModel(artifacts);

    // Max dequantization error over all weights (int8 weights stay codes
    // at rest — dequantized here for comparison only).
    double maxErr = 0;
    const auto origWeights = model->weights();
    const auto newWeights = loaded->weights();
    for (std::size_t i = 0; i < origWeights.size(); ++i) {
      const auto a = realValues(origWeights[i].value());
      const auto b = realValues(newWeights[i].value());
      for (std::size_t j = 0; j < a.size(); ++j) {
        maxErr = std::max(maxErr, static_cast<double>(std::fabs(a[j] - b[j])));
      }
    }
    const double agree = agreement(*model, *loaded, mn.inputSize, 20);
    std::printf("%-10s %14zu %8zu %16.6f %15.0f%%\n",
                tfjs::io::quantizationName(q),
                artifacts.weights.totalBytes(),
                artifacts.weights.shards.size(), maxErr, agree * 100);
    tfjs::bench::Json row = tfjs::bench::Json::object();
    row.set("format", tfjs::io::quantizationName(q));
    row.set("weight_bytes", static_cast<double>(
                                artifacts.weights.totalBytes()));
    row.set("shards", static_cast<int>(artifacts.weights.shards.size()));
    row.set("max_weight_err", maxErr);
    row.set("top1_agreement", agree);
    transport.push(std::move(row));
    loaded->dispose();
  }
  doc.set("transport", std::move(transport));
  model->dispose();

  // ---------------------------------------------------------- execution
  std::printf("\n== Execution: f32 vs int8 quantized kernels (native) ==\n\n");
  std::printf("%-18s %12s %12s %9s %14s %10s\n", "workload", "f32 ms",
              "int8 ms", "speedup", "max |out err|", "top-1");

  auto report = [](const char* name, const ExecResult& r) {
    std::printf("%-18s %12.3f %12.3f %8.2fx %14.6f %9.0f%%\n", name, r.f32Ms,
                r.int8Ms, r.speedup(), r.maxAbsErr, r.top1Agree * 100);
  };

  // The BENCH_table1 native-row workload (MobileNet v1 1.0_224): the gate.
  tfjs::models::MobileNetOptions big;
  const ExecResult gate = execCompare(
      tfjs::models::buildMobileNetV1(big), tfjs::models::buildMobileNetV1(big),
      Shape{1, big.inputSize, big.inputSize, 3}, bigRuns, bigAgree,
      big.inputSize);
  report("mobilenet_1.0_224", gate);

  // The serving workloads (bench_serving shapes) for the satellite table.
  tfjs::models::MobileNetOptions small;
  small.alpha = 0.25f;
  small.inputSize = 32;
  small.numClasses = 10;
  const ExecResult smallRes = execCompare(
      tfjs::models::buildMobileNetV1(small),
      tfjs::models::buildMobileNetV1(small),
      Shape{1, small.inputSize, small.inputSize, 3}, 50, 100,
      small.inputSize);
  report("mobilenet_0.25_32", smallRes);

  const ExecResult towerRes =
      execCompare(buildTower(), buildTower(), Shape{1, 32}, 200, 0, 0);
  report("mlp_tower_32x32", towerRes);

  tfjs::bench::Json exec = tfjs::bench::Json::object();
  exec.set("methodology",
           "wall ms of predict+dataSync averaged after warm-up, single "
           "input, same machine as BENCH_table1 (its native f32 row is the "
           "reference)");
  exec.set("mobilenet_224", execJson("MobileNet v1 1.0_224", gate));
  exec.set("mobilenet_0.25_32",
           execJson("MobileNet v1 0.25_32, 10 classes", smallRes));
  exec.set("tower", execJson("MLP tower 32 wide x 32 deep", towerRes));
  doc.set("execution", std::move(exec));

  const bool pass = gate.speedup() >= 2.0 && gate.top1Agree >= 0.99;
  tfjs::bench::Json gateJson = tfjs::bench::Json::object();
  gateJson.set("criterion",
               "int8 mobilenet_1.0_224 >= 2x f32 wall, top-1 agreement >= "
               "99% vs f32");
  gateJson.set("speedup", gate.speedup());
  gateJson.set("top1_agreement", gate.top1Agree);
  gateJson.set("pass", tfjs::bench::Json::boolean(pass));
  doc.set("gate", std::move(gateJson));
  doc.writeFile("BENCH_quant.json");

  std::printf("\nShape check: int8 shrinks the bundle ~4x like uint8 AND "
              "executes >= 2x faster than f32 (the paper's transport-only "
              "quantization leaves that on the table).\n");
  std::printf("gate (int8 1.0_224 >= 2x f32, top-1 agreement >= 99%%): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
