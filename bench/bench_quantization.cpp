// E10 — weight quantization (paper section 5.1): "The user can also
// quantize the weights, reducing the model size by 4X."
//
// MobileNet weights are serialized at fp32 / uint16 / uint8; reported: total
// manifest bytes (the 4x claim), shard counts under the 4 MB limit (E11),
// worst-case dequantization error, and end-to-end prediction agreement
// between the full-precision and quantized models on synthetic images.
#include <cmath>
#include <cstdio>

#include "backends/register.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "io/model_io.h"
#include "models/mobilenet.h"
#include "ops/ops.h"

namespace o = tfjs::ops;

namespace {

/// Top-1 agreement between two models over n synthetic images.
double agreement(tfjs::layers::Sequential& a, tfjs::layers::Sequential& b,
                 int inputSize, int n) {
  int same = 0;
  for (int i = 0; i < n; ++i) {
    tfjs::data::Image img = tfjs::data::makeTestImage(
        inputSize, inputSize, static_cast<float>(8 + (i * 7) % inputSize),
        static_cast<float>(5 + (i * 13) % inputSize),
        static_cast<std::uint64_t>(i));
    tfjs::Tensor x = tfjs::data::fromPixels(img);
    tfjs::Tensor pa = a.predict(x);
    tfjs::Tensor pb = b.predict(x);
    tfjs::Tensor ia = o::argMax(pa, -1);
    tfjs::Tensor ib = o::argMax(pb, -1);
    same += ia.dataSync()[0] == ib.dataSync()[0];
    for (tfjs::Tensor t : {x, pa, pb, ia, ib}) t.dispose();
  }
  return static_cast<double>(same) / n;
}

}  // namespace

int main() {
  tfjs::backends::registerAll();
  tfjs::setBackend("native");

  tfjs::models::MobileNetOptions mn;
  mn.alpha = 0.5f;
  mn.inputSize = 64;
  mn.numClasses = 100;
  auto model = tfjs::models::buildMobileNetV1(mn);
  const tfjs::Shape inputShape{1, mn.inputSize, mn.inputSize, 3};
  model->build(inputShape);

  std::printf("== Quantization (section 5.1): MobileNet %.2f_%d, %zu params "
              "==\n\n", mn.alpha, mn.inputSize, model->countParams());
  std::printf("%-10s %14s %8s %16s %16s\n", "format", "weight bytes",
              "shards", "max |error|", "top-1 agreement");

  using tfjs::io::Quantization;
  for (Quantization q : {Quantization::kNone, Quantization::kUint16,
                         Quantization::kUint8}) {
    tfjs::io::SaveOptions save;
    save.quantization = q;
    tfjs::io::ModelArtifacts artifacts =
        tfjs::io::serializeModel(*model, inputShape, save);
    auto loaded = tfjs::io::deserializeModel(artifacts);

    // Max dequantization error over all weights.
    double maxErr = 0;
    const auto origWeights = model->weights();
    const auto newWeights = loaded->weights();
    for (std::size_t i = 0; i < origWeights.size(); ++i) {
      const auto a = origWeights[i].value().dataSync();
      const auto b = newWeights[i].value().dataSync();
      for (std::size_t j = 0; j < a.size(); ++j) {
        maxErr = std::max(maxErr, static_cast<double>(std::fabs(a[j] - b[j])));
      }
    }
    const double agree = agreement(*model, *loaded, mn.inputSize, 20);
    std::printf("%-10s %14zu %8zu %16.6f %15.0f%%\n",
                tfjs::io::quantizationName(q),
                artifacts.weights.totalBytes(),
                artifacts.weights.shards.size(), maxErr, agree * 100);
    loaded->dispose();
  }

  std::printf("\nShape check: uint8 is 4x smaller than fp32 with high "
              "prediction agreement (the paper ships quantized hosted "
              "models).\n");
  model->dispose();
  return 0;
}
