// E14 — debugging & profiling costs (paper section 3.8): time(f),
// profile(f), and debug mode each wrap the same workload; this bench
// measures what each tool costs relative to a bare run — debug mode is the
// expensive one (it downloads every kernel output for the NaN scan), which
// is why it is opt-in behind a flag in the paper.
#include <benchmark/benchmark.h>

#include "backends/register.h"
#include "core/engine.h"
#include "ops/ops.h"

namespace o = tfjs::ops;

namespace {

void workload(const tfjs::Tensor& x) {
  tfjs::tidyVoid([&] {
    tfjs::Tensor h = o::relu(o::matMul(x, x));
    tfjs::Tensor s = o::softmax(h);
    s.dataSync();
  });
}

void BM_Bare(benchmark::State& state) {
  tfjs::setBackend("native");
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{128, 128}, 0, 1, 1);
  for (auto _ : state) workload(x);
  x.dispose();
}
BENCHMARK(BM_Bare)->Unit(benchmark::kMicrosecond);

void BM_UnderTime(benchmark::State& state) {
  tfjs::setBackend("native");
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{128, 128}, 0, 1, 1);
  for (auto _ : state) {
    tfjs::TimingInfo t = tfjs::time([&] { workload(x); });
    benchmark::DoNotOptimize(t.kernelMs);
  }
  x.dispose();
}
BENCHMARK(BM_UnderTime)->Unit(benchmark::kMicrosecond);

void BM_UnderProfile(benchmark::State& state) {
  tfjs::setBackend("native");
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{128, 128}, 0, 1, 1);
  for (auto _ : state) {
    tfjs::ProfileInfo p = tfjs::profile([&] { workload(x); });
    benchmark::DoNotOptimize(p.kernels.size());
  }
  x.dispose();
}
BENCHMARK(BM_UnderProfile)->Unit(benchmark::kMicrosecond);

void BM_UnderDebugMode(benchmark::State& state) {
  tfjs::setBackend("native");
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{128, 128}, 0, 1, 1);
  tfjs::Engine::get().setDebugMode(true);
  for (auto _ : state) workload(x);
  tfjs::Engine::get().setDebugMode(false);
  x.dispose();
}
BENCHMARK(BM_UnderDebugMode)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
