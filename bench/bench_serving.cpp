// Serving bench (ISSUE 6 acceptance gate): the multi-tenant inference
// server's dynamic batching must buy >= 2x the saturation throughput of the
// unbatched (maxBatch=1) configuration at a mean batch size >= 4, with
// per-request outputs bit-identical to a direct single-example forward
// pass (batching changes scheduling, never results).
//
// Two workloads on the native backend:
//  * tower — a deep, narrow MLP (32 wide, 32 layers; the ranking-tower
//    shape that dominates production serving). At batch 1 every matMul is
//    a GEMV and per-op dispatch overhead is comparable to compute: the
//    regime dynamic batching targets, and the workload the gate runs on.
//  * mobilenet — MobileNet v1 0.25_32. Its convs present a large GEMM
//    row count (batch x spatial positions) even for one example, so a
//    single request already saturates the core: batching is measured and
//    reported, but roughly throughput-neutral here by design. Reported for
//    honesty, not gated.
//
// Two measurements per workload:
//  * saturation — a closed firehose (blocking submits against the bounded
//    queue) measures peak sustainable throughput, unbatched vs batched;
//  * open-loop sweep (tower only) — a generator submits at fixed offered
//    rates (tryInfer: overload is shed, not queued forever) and records
//    achieved throughput, p50/p99 latency, shed rate and mean batch size.
//
// Emits BENCH_serving.json at the repo root.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "backends/register.h"
#include "core/engine.h"
#include "json_out.h"
#include "layers/core_layers.h"
#include "models/mobilenet.h"
#include "serving/server.h"

using tfjs::Shape;
using tfjs::serving::InferenceResult;
using tfjs::serving::InferenceServer;
using tfjs::serving::ServerOptions;
using Clock = std::chrono::steady_clock;

namespace {

struct Workload {
  const char* name;
  Shape example;
  std::unique_ptr<tfjs::layers::Sequential> (*build)();
};

std::unique_ptr<tfjs::layers::Sequential> buildTower() {
  auto m = std::make_unique<tfjs::layers::Sequential>("tower");
  for (int i = 0; i < 32; ++i) {
    tfjs::layers::DenseOptions d;
    d.units = 32;
    d.activation = "relu";
    d.name = "fc" + std::to_string(i);
    m->add(std::make_shared<tfjs::layers::Dense>(d));
  }
  tfjs::layers::DenseOptions head;
  head.units = 10;
  head.activation = "softmax";
  head.name = "head";
  m->add(std::make_shared<tfjs::layers::Dense>(head));
  return m;
}

std::unique_ptr<tfjs::layers::Sequential> buildMobileNet() {
  tfjs::models::MobileNetOptions opts;
  opts.alpha = 0.25f;
  opts.inputSize = 32;
  opts.numClasses = 10;
  return tfjs::models::buildMobileNetV1(opts);
}

const Workload kTower{"tower", Shape{32}, buildTower};
const Workload kMobileNet{"mobilenet", Shape{32, 32, 3}, buildMobileNet};

ServerOptions serverOpts(int maxBatch) {
  ServerOptions opts;
  opts.backend = "native";
  opts.maxBatch = maxBatch;
  opts.batchDelayMs = 1.0;
  opts.queueCapacity = 64;
  return opts;
}

std::vector<std::vector<float>> makeInputs(const Workload& w, int n) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<float> dist(-1.f, 1.f);
  std::vector<std::vector<float>> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<float> v(w.example.size());
    for (auto& x : v) x = dist(rng);
    inputs.push_back(std::move(v));
  }
  return inputs;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

// ----------------------------------------------------------- saturation

struct SaturationResult {
  double rps = 0;
  double meanBatch = 0;
  int maxBatch = 0;
};

/// Peak sustainable throughput: `total` blocking submits against the
/// bounded queue keep the scheduler saturated; elapsed time to the last
/// completion is the denominator.
SaturationResult saturate(const Workload& w, int maxBatch, int total,
                          const std::vector<std::vector<float>>& inputs) {
  InferenceServer server(w.build(), serverOpts(maxBatch));
  auto session = server.createSession("firehose");
  session->inferSync(inputs[0], w.example);  // build weights, warm caches

  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(static_cast<std::size_t>(total));
  const auto t0 = Clock::now();
  for (int i = 0; i < total; ++i) {
    futures.push_back(
        session->infer(inputs[static_cast<std::size_t>(i) % inputs.size()],
                       w.example));
  }
  for (auto& f : futures) f.get();
  const double elapsedS =
      std::chrono::duration<double>(Clock::now() - t0).count();
  server.stop();

  SaturationResult r;
  r.rps = static_cast<double>(total) / elapsedS;
  r.meanBatch = server.stats().meanBatchSize();
  r.maxBatch = server.stats().maxBatchSize;
  return r;
}

// -------------------------------------------------------- open-loop sweep

struct SweepPoint {
  double offeredRps = 0;
  double achievedRps = 0;
  double p50Ms = 0, p99Ms = 0;
  double shedPct = 0;
  double meanBatch = 0;
};

/// Open-loop generator: submits at a fixed rate for `durationS` regardless
/// of completions (tryInfer sheds when the bounded queue is full), then
/// waits for the accepted tail and reports the latency distribution.
SweepPoint sweepPoint(const Workload& w, int maxBatch, double offeredRps,
                      double durationS,
                      const std::vector<std::vector<float>>& inputs) {
  InferenceServer server(w.build(), serverOpts(maxBatch));
  auto session = server.createSession("open-loop");
  session->inferSync(inputs[0], w.example);

  const auto period = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(1.0 / offeredRps));
  const int total = static_cast<int>(offeredRps * durationS);
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(static_cast<std::size_t>(total));
  int shed = 0;
  const auto t0 = Clock::now();
  auto next = t0;
  for (int i = 0; i < total; ++i) {
    std::this_thread::sleep_until(next);
    next += period;
    auto fut = session->tryInfer(
        inputs[static_cast<std::size_t>(i) % inputs.size()], w.example);
    if (fut) {
      futures.push_back(std::move(*fut));
    } else {
      ++shed;
    }
  }
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (auto& f : futures) latencies.push_back(f.get().totalMs);
  const double elapsedS =
      std::chrono::duration<double>(Clock::now() - t0).count();
  server.stop();

  std::sort(latencies.begin(), latencies.end());
  SweepPoint p;
  p.offeredRps = offeredRps;
  p.achievedRps = static_cast<double>(latencies.size()) / elapsedS;
  p.p50Ms = percentile(latencies, 0.50);
  p.p99Ms = percentile(latencies, 0.99);
  p.shedPct = 100.0 * shed / std::max(total, 1);
  p.meanBatch = server.stats().meanBatchSize();
  return p;
}

// ------------------------------------------------------------ bit-identity

/// Batched results must match a direct [1,...] forward pass exactly.
bool verifyBitIdentical(const Workload& w,
                        const std::vector<std::vector<float>>& inputs) {
  ServerOptions opts = serverOpts(8);
  opts.batchDelayMs = 50;  // force coalescing
  InferenceServer server(w.build(), opts);
  auto session = server.createSession("verify");
  std::vector<std::future<InferenceResult>> futures;
  for (const auto& in : inputs) {
    futures.push_back(session->infer(in, w.example));
  }
  std::vector<InferenceResult> results;
  for (auto& f : futures) results.push_back(f.get());
  server.stop();

  tfjs::setBackend("native");
  bool identical = true;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    std::vector<int> dims{1};
    for (int d : w.example.dims()) dims.push_back(d);
    tfjs::Tensor x =
        tfjs::Engine::get().makeTensorFromHost(inputs[i], Shape(dims));
    tfjs::Tensor y = server.model().predict(x);
    identical = identical && y.dataSync() == results[i].values;
    x.dispose();
    y.dispose();
  }
  return identical;
}

// ------------------------------------------------- google-benchmark mirror

void BM_ServingSingleRequest(benchmark::State& state) {
  InferenceServer server(kTower.build(), serverOpts(1));
  auto session = server.createSession();
  const auto inputs = makeInputs(kTower, 1);
  session->inferSync(inputs[0], kTower.example);
  for (auto _ : state) session->inferSync(inputs[0], kTower.example);
  server.stop();
}
BENCHMARK(BM_ServingSingleRequest)->Unit(benchmark::kMicrosecond);

tfjs::bench::Json saturationJson(const SaturationResult& unbatched,
                                 const SaturationResult& batched,
                                 int requests) {
  tfjs::bench::Json sat = tfjs::bench::Json::object();
  sat.set("unbatched_rps", unbatched.rps);
  sat.set("batched_rps", batched.rps);
  sat.set("speedup", unbatched.rps > 0 ? batched.rps / unbatched.rps : 0);
  sat.set("batched_mean_batch", batched.meanBatch);
  sat.set("batched_max_batch", batched.maxBatch);
  sat.set("requests", requests);
  return sat;
}

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();

  constexpr int kBatched = 8;
  constexpr int kSaturationRequests = 512;

  // ------------------------------------------------ tower (gate workload)
  const auto towerInputs = makeInputs(kTower, 16);
  const bool towerIdentical = verifyBitIdentical(kTower, towerInputs);
  const SaturationResult towerUnbatched =
      saturate(kTower, /*maxBatch=*/1, kSaturationRequests, towerInputs);
  const SaturationResult towerBatched =
      saturate(kTower, kBatched, kSaturationRequests, towerInputs);
  const double speedup =
      towerUnbatched.rps > 0 ? towerBatched.rps / towerUnbatched.rps : 0;
  std::printf("\ntower saturation: unbatched %.0f req/s, batched %.0f req/s "
              "(%.2fx, mean batch %.1f, max %d)\n",
              towerUnbatched.rps, towerBatched.rps, speedup,
              towerBatched.meanBatch, towerBatched.maxBatch);

  // Offered loads bracket the unbatched capacity: below it both configs
  // keep up; above it only batching can absorb the offered rate.
  const std::vector<double> loadFactors{0.5, 1.0, 2.0, 3.0};
  const double sweepDurationS = 1.5;
  tfjs::bench::Json sweep = tfjs::bench::Json::array();
  std::printf("%-10s %-12s %-14s %-10s %-10s %-8s %-8s\n", "config",
              "offered/s", "achieved/s", "p50 ms", "p99 ms", "shed %",
              "batch");
  for (const int maxBatch : {1, kBatched}) {
    for (const double factor : loadFactors) {
      const double offered = towerUnbatched.rps * factor;
      const SweepPoint p =
          sweepPoint(kTower, maxBatch, offered, sweepDurationS, towerInputs);
      std::printf("%-10s %-12.0f %-14.0f %-10.3f %-10.3f %-8.1f %-8.1f\n",
                  maxBatch == 1 ? "unbatched" : "batched", p.offeredRps,
                  p.achievedRps, p.p50Ms, p.p99Ms, p.shedPct, p.meanBatch);
      tfjs::bench::Json row = tfjs::bench::Json::object();
      row.set("config", maxBatch == 1 ? "unbatched" : "batched");
      row.set("max_batch", maxBatch);
      row.set("offered_rps", p.offeredRps);
      row.set("achieved_rps", p.achievedRps);
      row.set("p50_ms", p.p50Ms);
      row.set("p99_ms", p.p99Ms);
      row.set("shed_pct", p.shedPct);
      row.set("mean_batch", p.meanBatch);
      sweep.push(std::move(row));
    }
  }

  // ------------------------------------------- mobilenet (reported only)
  const auto mobileInputs = makeInputs(kMobileNet, 16);
  const bool mobileIdentical = verifyBitIdentical(kMobileNet, mobileInputs);
  const SaturationResult mobileUnbatched =
      saturate(kMobileNet, /*maxBatch=*/1, 256, mobileInputs);
  const SaturationResult mobileBatched =
      saturate(kMobileNet, kBatched, 256, mobileInputs);
  std::printf("mobilenet saturation: unbatched %.0f req/s, batched %.0f "
              "req/s (%.2fx; conv GEMMs saturate the core at batch 1)\n",
              mobileUnbatched.rps, mobileBatched.rps,
              mobileUnbatched.rps > 0
                  ? mobileBatched.rps / mobileUnbatched.rps
                  : 0);

  tfjs::bench::Json doc = tfjs::bench::Json::object();
  doc.set("bench", "serving");
  doc.set("backend", "native");
  tfjs::bench::Json machine = tfjs::bench::Json::object();
  machine.set("hardware_concurrency",
              static_cast<int>(std::thread::hardware_concurrency()));
  doc.set("machine", std::move(machine));
  tfjs::bench::Json tower = tfjs::bench::Json::object();
  tower.set("workload", "MLP tower 32x32 wide/deep, 10 classes");
  tower.set("saturation", saturationJson(towerUnbatched, towerBatched,
                                         kSaturationRequests));
  tower.set("open_loop_sweep", std::move(sweep));
  tower.set("bit_identical", tfjs::bench::Json::boolean(towerIdentical));
  doc.set("tower", std::move(tower));
  tfjs::bench::Json mobile = tfjs::bench::Json::object();
  mobile.set("workload", "MobileNet v1 0.25_32, 10 classes");
  mobile.set("saturation",
             saturationJson(mobileUnbatched, mobileBatched, 256));
  mobile.set("bit_identical", tfjs::bench::Json::boolean(mobileIdentical));
  mobile.set("note", "conv workloads saturate one core at batch 1 (GEMM "
                     "rows = spatial positions); batching is latency/"
                     "fairness-neutral here, gated on the tower workload");
  doc.set("mobilenet", std::move(mobile));
  doc.writeFile("BENCH_serving.json");

  const bool pass = speedup >= 2.0 && towerBatched.meanBatch >= 4.0 &&
                    towerIdentical && mobileIdentical;
  std::printf("gate (tower batched >= 2x unbatched at mean batch >= 4, "
              "bit-identical): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
