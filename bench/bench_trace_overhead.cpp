// Trace-overhead bench (ISSUE 3 acceptance gate): the tracing fast path is
// one relaxed atomic load per candidate event, so a fully-disabled build
// should cost ~0%, and a ring-recorder-enabled run should stay under 5% on
// a realistic small workload (relu(matMul) + softmax + dataSync on the
// native backend).
//
// Emits BENCH_trace.json at the repo root with off/on medians and the
// overhead percentage.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "backends/register.h"
#include "core/engine.h"
#include "core/trace.h"
#include "json_out.h"
#include "ops/ops.h"

namespace o = tfjs::ops;

namespace {

void workload(const tfjs::Tensor& x) {
  tfjs::tidyVoid([&] {
    tfjs::Tensor h = o::relu(o::matMul(x, x));
    tfjs::Tensor s = o::softmax(h);
    s.dataSync();
  });
}

void BM_TracingOff(benchmark::State& state) {
  tfjs::setBackend("native");
  tfjs::trace::Recorder::get().setEnabled(false);
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{128, 128}, 0, 1, 1);
  for (auto _ : state) workload(x);
  x.dispose();
}
BENCHMARK(BM_TracingOff)->Unit(benchmark::kMicrosecond);

void BM_TracingOn(benchmark::State& state) {
  tfjs::setBackend("native");
  tfjs::trace::Recorder::get().setCapacity(1 << 16);
  tfjs::trace::Recorder::get().clear();
  tfjs::trace::Recorder::get().setEnabled(true);
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{128, 128}, 0, 1, 1);
  for (auto _ : state) workload(x);
  x.dispose();
  tfjs::trace::Recorder::get().setEnabled(false);
  tfjs::trace::Recorder::get().clear();
}
BENCHMARK(BM_TracingOn)->Unit(benchmark::kMicrosecond);

/// One timed sample: wall time of `reps` workload iterations, in ms.
double sampleRunMs(const tfjs::Tensor& x, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) workload(x);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();

  // Direct A/B for the JSON gate (google-benchmark interleaving makes the
  // per-benchmark medians awkward to diff programmatically).
  tfjs::setBackend("native");
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{128, 128}, 0, 1, 1);
  constexpr int kReps = 40;
  constexpr int kRepeats = 9;
  for (int i = 0; i < 5; ++i) workload(x);  // warm up pool + caches

  // Interleave the off/on samples so clock drift, turbo state and cache
  // warmth hit both sides equally.
  tfjs::trace::Recorder::get().setCapacity(1 << 16);
  std::vector<double> offSamples, onSamples;
  std::size_t traced = 0;
  for (int r = 0; r < kRepeats; ++r) {
    tfjs::trace::Recorder::get().setEnabled(false);
    offSamples.push_back(sampleRunMs(x, kReps));
    tfjs::trace::Recorder::get().clear();
    tfjs::trace::Recorder::get().setEnabled(true);
    onSamples.push_back(sampleRunMs(x, kReps));
    traced = tfjs::trace::Recorder::get().snapshot().size();
  }
  const double offMs = median(offSamples);
  const double onMs = median(onSamples);
  tfjs::trace::Recorder::get().setEnabled(false);
  tfjs::trace::Recorder::get().clear();
  x.dispose();

  const double overheadPct = offMs > 0 ? 100.0 * (onMs - offMs) / offMs : 0;
  std::printf("\ntrace overhead: off %.3f ms, on %.3f ms (%+.2f%%), "
              "%zu events buffered\n",
              offMs, onMs, overheadPct, traced);

  tfjs::bench::Json doc = tfjs::bench::Json::object();
  doc.set("bench", "trace_overhead");
  doc.set("workload", "relu(matMul(x,x))+softmax+dataSync, native, 128x128");
  doc.set("reps_per_sample", kReps);
  doc.set("samples", kRepeats);
  doc.set("off_ms", offMs);
  doc.set("on_ms", onMs);
  doc.set("overhead_pct", overheadPct);
  doc.set("events_buffered", static_cast<double>(traced));
  doc.writeFile("BENCH_trace.json");
  return 0;
}
