// E7 — the texture recycler (paper section 4.1.2): "Disposing and
// re-allocating WebGL textures is relatively expensive, so we don't release
// memory when a tensor gets disposed. Instead, we mark the texture for
// reuse ... The texture recycler gives us significant performance wins since
// multiple passes through the same ML model often generate tensors of the
// same shapes."
//
// Ablation: repeated passes of the same conv model on two webgl-sim
// instances with recycling on/off. Reported: fresh texture allocations,
// recycler hits, and wall time (allocation cost is real host work in the
// simulator, as texImage2D is for a driver).
#include <chrono>
#include <cstdio>

#include "backends/register.h"
#include "backends/webgl/webgl_backend.h"
#include "core/engine.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using namespace tfjs::backends::webgl;

namespace {

struct Result {
  TextureManagerStats stats;
  double wallMs = 0;
};

Result runPasses(const std::string& backend, int passes) {
  tfjs::setBackend(backend);
  auto& b = dynamic_cast<WebGLBackend&>(tfjs::Engine::get().backend());
  tfjs::Tensor filter = o::randomNormal(tfjs::Shape{3, 3, 8, 8}, 0, 1, 1);
  auto pass = [&] {
    tfjs::tidyVoid([&] {
      tfjs::Tensor x = o::randomNormal(tfjs::Shape{1, 64, 64, 8}, 0, 1, 2);
      tfjs::Tensor h = o::relu(o::conv2d(x, filter, 1, 1, tfjs::PadMode::kSame));
      tfjs::Tensor p = o::maxPool(h, 2, 2, 2, 2, tfjs::PadMode::kValid);
      p.dataSync();
    });
  };
  pass();  // warm-up
  b.flush();
  const auto before = b.textureStats();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < passes; ++i) pass();
  b.flush();
  Result r;
  r.wallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  const auto after = b.textureStats();
  r.stats.texturesCreated = after.texturesCreated - before.texturesCreated;
  r.stats.texturesRecycled = after.texturesRecycled - before.texturesRecycled;
  r.stats.gpuBytes = after.gpuBytes;
  filter.dispose();
  return r;
}

}  // namespace

int main() {
  tfjs::backends::registerAll();
  registerBackendVariant("webgl-recycle", [] {
    WebGLOptions o;
    o.recycleTextures = true;
    return o;
  }());
  registerBackendVariant("webgl-norecycle", [] {
    WebGLOptions o;
    o.recycleTextures = false;
    return o;
  }());

  const int passes = 30;
  std::printf("== Texture recycler (section 4.1.2): %d passes of a conv "
              "model ==\n\n", passes);
  Result off = runPasses("webgl-norecycle", passes);
  Result on = runPasses("webgl-recycle", passes);

  std::printf("%-26s %14s %14s\n", "", "recycler OFF", "recycler ON");
  std::printf("%-26s %14zu %14zu\n", "fresh texture allocations",
              off.stats.texturesCreated, on.stats.texturesCreated);
  std::printf("%-26s %14zu %14zu\n", "recycler hits",
              off.stats.texturesRecycled, on.stats.texturesRecycled);
  std::printf("%-26s %14.1f %14.1f\n", "wall ms (all passes)", off.wallMs,
              on.wallMs);
  std::printf("\nShape check: recycling eliminates steady-state allocations: "
              "%s\n",
              (on.stats.texturesCreated == 0 &&
               off.stats.texturesCreated >= static_cast<std::size_t>(passes))
                  ? "HOLDS"
                  : "VIOLATED");
  return 0;
}
