// E8 — the GPU→CPU paging heuristic (paper section 4.1.2): "we automatically
// page WebGL textures to the CPU when the total amount of GPU memory
// allocated exceeds a threshold ... built-in heuristics to avoid crashing
// the application."
//
// A working set deliberately larger than the GPU budget is kept live and
// revisited; the backend must page LRU textures out and transparently back
// in, with no data loss and bounded resident bytes. Reported: page-out/in
// counts, resident bytes vs budget, and the wall-time overhead vs an
// unconstrained instance.
#include <chrono>
#include <cstdio>
#include <vector>

#include "backends/register.h"
#include "backends/webgl/webgl_backend.h"
#include "core/engine.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using namespace tfjs::backends::webgl;

namespace {

struct Result {
  TextureManagerStats stats;
  double wallMs = 0;
  bool dataIntact = true;
};

Result runWorkingSet(const std::string& backend) {
  tfjs::setBackend(backend);
  auto& b = dynamic_cast<WebGLBackend&>(tfjs::Engine::get().backend());
  const auto t0 = std::chrono::steady_clock::now();
  // 16 live tensors x 256 KB = 4 MB working set.
  std::vector<tfjs::Tensor> live;
  for (int i = 0; i < 16; ++i) {
    live.push_back(o::fill(tfjs::Shape{256, 256}, static_cast<float>(i)));
  }
  Result r;
  // Three sweeps over the working set: every revisit of a paged tensor
  // forces a page-in.
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (int i = 0; i < 16; ++i) {
      tfjs::Tensor y = o::addScalar(live[static_cast<std::size_t>(i)], 1);
      const auto v = y.dataSync();
      r.dataIntact &= v[0] == static_cast<float>(i + 1);
      y.dispose();
    }
  }
  b.flush();
  r.wallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  r.stats = b.textureStats();
  for (auto& t : live) t.dispose();
  return r;
}

}  // namespace

int main() {
  tfjs::backends::registerAll();
  registerBackendVariant("webgl-1mb", [] {
    WebGLOptions o;
    o.gpuBudgetBytes = 1 * 1024 * 1024;  // << 4 MB working set
    return o;
  }());
  registerBackendVariant("webgl-roomy", [] {
    WebGLOptions o;
    o.gpuBudgetBytes = 256ull * 1024 * 1024;
    return o;
  }());

  std::printf("== Paging heuristic (section 4.1.2): 4 MB working set ==\n\n");
  Result constrained = runWorkingSet("webgl-1mb");
  Result roomy = runWorkingSet("webgl-roomy");

  std::printf("%-26s %14s %14s\n", "", "1 MB budget", "256 MB budget");
  std::printf("%-26s %14zu %14zu\n", "page-outs", constrained.stats.pageOuts,
              roomy.stats.pageOuts);
  std::printf("%-26s %14zu %14zu\n", "page-ins", constrained.stats.pageIns,
              roomy.stats.pageIns);
  std::printf("%-26s %14zu %14zu\n", "peak resident KB",
              constrained.stats.peakGpuBytes / 1024,
              roomy.stats.peakGpuBytes / 1024);
  std::printf("%-26s %14.1f %14.1f\n", "wall ms", constrained.wallMs,
              roomy.wallMs);
  std::printf("%-26s %14s %14s\n", "data intact",
              constrained.dataIntact ? "yes" : "NO",
              roomy.dataIntact ? "yes" : "NO");

  const bool holds = constrained.stats.pageOuts > 0 &&
                     roomy.stats.pageOuts == 0 && constrained.dataIntact;
  std::printf("\nShape check: the constrained device pages instead of "
              "crashing, losslessly: %s\n", holds ? "HOLDS" : "VIOLATED");
  return 0;
}
