// Graph-capture bench (ISSUE 9 + ISSUE 10 acceptance gates), three parts:
//
//  1. MobileNet: a captured + optimized + memory-planned forward pass must
//     beat the eager Layers path by >= 1.2x with >= 90% fewer per-op pool
//     allocations — at bit-identical outputs (the executor replays through
//     the public ops layer, so every kernel is the one eager would have
//     dispatched). Workload: MobileNetV1 alpha=0.125 at 32x32 with
//     BatchNorm, batch 1, native backend — single-image inference is where
//     dispatch, scope bookkeeping, and allocator traffic dominate.
//
//  2. Elementwise chain: a 12-op chain captured WITH cross-op fusion must
//     beat the same graph captured WITHOUT it (all other passes on) by
//     >= 1.5x, bit-identical. The fused region loads each input element
//     once, runs the whole chain in registers, and stores once — versus 12
//     loop dispatches with a load+store each.
//
//  3. Shape polymorphism: plans are keyed by symbolic shape-class, so a
//     warm sweep over batch sizes {1, 4, 7, 16} must perform ZERO plan
//     re-instantiations (graph.plan_compiles stays flat).
//
// Per-op pool allocations are counted at the BufferPool: shared-pool
// acquires (hits + misses + bypasses) plus arena misses. Arena *hits* are
// planned reuse of graph-owned storage, not allocations.
//
// `--smoke` runs the same gates at reduced timing repeats (for CI legs).
//
// Emits BENCH_graph.json at the repo root.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "backends/register.h"
#include "core/buffer_pool.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "graph/capture.h"
#include "graph/executor.h"
#include "json_out.h"
#include "models/mobilenet.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using tfjs::Tensor;
using tfjs::core::BufferPool;

namespace {

tfjs::models::MobileNetOptions benchOptions() {
  tfjs::models::MobileNetOptions opts;
  opts.alpha = 0.125f;
  opts.inputSize = 32;
  opts.numClasses = 10;
  opts.withBatchNorm = true;  // BN mul/add chains: fold + fuse fodder
  opts.seed = 7;
  return opts;
}

std::uint64_t counterValue(const char* name) {
  return tfjs::metrics::Registry::get().counter(name).value();
}

/// Pool allocations performed by `fn`: shared-pool acquires plus arena
/// misses. Warm captured runs should drive this to (near) zero.
template <typename Fn>
std::uint64_t poolAllocsDuring(Fn&& fn) {
  const auto before = BufferPool::get().stats();
  const std::uint64_t arenaMissBefore = counterValue("pool.arena_misses");
  fn();
  const auto after = BufferPool::get().stats();
  return (after.hits - before.hits) + (after.misses - before.misses) +
         (after.bypasses - before.bypasses) +
         (counterValue("pool.arena_misses") - arenaMissBefore);
}

/// One timing sample: per-pass ms over `inner` back-to-back passes.
/// Sub-millisecond passes need batching — a single pass is within
/// scheduler-jitter range of the clock.
template <typename Fn>
double batchPassMs(Fn&& fn, int inner) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < inner; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / inner;
}

/// Times two workloads interleaved (A,B,A,B,...) and reports each one's
/// minimum batch time. Interleaving means external load (this is a shared
/// 1-core box) perturbs both the same way; the min is the quiet-machine
/// cost, which is what the A/B ratio is about.
template <typename FnA, typename FnB>
std::pair<double, double> minPassMsInterleaved(FnA&& a, FnB&& b, int repeats,
                                               int inner) {
  double minA = 1e300, minB = 1e300;
  for (int r = 0; r < repeats; ++r) {
    minA = std::min(minA, batchPassMs(a, inner));
    minB = std::min(minB, batchPassMs(b, inner));
  }
  return {minA, minB};
}

bool bitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

double reductionPct(std::uint64_t base, std::uint64_t opt) {
  return base == 0 ? 0.0
                   : 100.0 * (1.0 - static_cast<double>(opt) /
                                        static_cast<double>(base));
}

struct Harness {
  std::unique_ptr<tfjs::layers::Sequential> model;
  Tensor x;
  tfjs::graph::CapturedGraph captured;

  Harness() {
    model = tfjs::models::buildMobileNetV1(benchOptions());
    x = o::randomNormal(
        tfjs::Shape{1, benchOptions().inputSize, benchOptions().inputSize, 3},
        0, 1, 11);
    model->predict(x).dispose();  // build weights before capture
    tfjs::graph::Graph g = tfjs::graph::capture(
        [this](const std::vector<Tensor>& ins) {
          return std::vector<Tensor>{model->predict(ins[0])};
        },
        {x});
    captured = tfjs::graph::CapturedGraph(std::move(g),
                                          tfjs::graph::PassOptions::all());
  }

  std::vector<float> runEager() {
    Tensor y = model->predict(x);
    std::vector<float> out = y.dataSync();
    y.dispose();
    return out;
  }

  std::vector<float> runCaptured() {
    std::vector<Tensor> ys = captured.run({x});
    std::vector<float> out = ys[0].dataSync();
    for (Tensor& y : ys) y.dispose();
    return out;
  }
};

/// 12-op elementwise chain over [16, 4096] with suffix-broadcast leaves:
/// mixed unary/binary/scalar links, every one region-eligible, so the fuser
/// collapses the whole body into one kFusedRegion.
struct ChainHarness {
  Tensor x, bias, scale, bias2;
  tfjs::graph::CapturedGraph fused, unfused;

  std::vector<Tensor> body(const std::vector<Tensor>& ins) {
    Tensor t = o::add(ins[0], bias);           // 1  (suffix broadcast)
    t = o::relu(t);                            // 2
    t = o::mulScalar(t, 1.25f);                // 3
    t = o::addScalar(t, -0.5f);                // 4
    t = o::square(t);                          // 5
    t = o::neg(t);                             // 6
    t = o::relu6(t);                           // 7
    t = o::mul(t, scale);                      // 8  (suffix broadcast)
    t = o::sub(t, bias2);                      // 9
    t = o::clipByValue(t, -4.0f, 4.0f);        // 10
    t = o::leakyRelu(t, 0.1f);                 // 11
    t = o::addScalar(t, 0.25f);                // 12
    return {t};
  }

  ChainHarness() {
    x = o::randomNormal(tfjs::Shape{16, 4096}, 0, 1, 21);
    bias = o::randomNormal(tfjs::Shape{4096}, 0, 1, 22);
    scale = o::randomNormal(tfjs::Shape{4096}, 0, 0.5f, 23);
    bias2 = o::randomNormal(tfjs::Shape{4096}, 0, 1, 24);
    auto fn = [this](const std::vector<Tensor>& ins) { return body(ins); };
    fused = tfjs::graph::CapturedGraph(tfjs::graph::capture(fn, {x}),
                                       tfjs::graph::PassOptions::all());
    tfjs::graph::PassOptions noRegions = tfjs::graph::PassOptions::all();
    noRegions.fuseElementwise = false;  // everything else stays on
    unfused = tfjs::graph::CapturedGraph(tfjs::graph::capture(fn, {x}),
                                         noRegions);
  }

  std::vector<float> run(tfjs::graph::CapturedGraph& g, const Tensor& feed) {
    std::vector<Tensor> ys = g.run({feed});
    std::vector<float> out = ys[0].dataSync();
    for (Tensor& y : ys) y.dispose();
    return out;
  }

  std::vector<float> runEager() {
    std::vector<Tensor> ys = tfjs::tidyAll([&] { return body({x}); });
    std::vector<float> out = ys[0].dataSync();
    for (Tensor& y : ys) y.dispose();
    return out;
  }

  void dispose() {
    fused.dispose();
    unfused.dispose();
    for (Tensor* t : {&x, &bias, &scale, &bias2}) t->dispose();
  }
};

Harness* g_harness = nullptr;

// ------------------------------------------------- google-benchmark mirrors

void BM_MobileNetEager(benchmark::State& state) {
  for (auto _ : state) g_harness->runEager();
}
BENCHMARK(BM_MobileNetEager)->Unit(benchmark::kMillisecond);

void BM_MobileNetCaptured(benchmark::State& state) {
  for (auto _ : state) g_harness->runCaptured();
}
BENCHMARK(BM_MobileNetCaptured)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();
  tfjs::setBackend("native");

  // --smoke: same gates, fewer timing repeats (CI sanitizer legs).
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  const int kRepeats = smoke ? 8 : 50;
  const int kInner = smoke ? 3 : 10;

  Harness harness;
  g_harness = &harness;

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();

  // Warm both paths: thread pool, pool buckets, fold caches, the arena.
  std::vector<float> outEager, outCaptured;
  for (int i = 0; i < 3; ++i) {
    outEager = harness.runEager();
    outCaptured = harness.runCaptured();
  }

  const std::uint64_t allocsEager =
      poolAllocsDuring([&] { harness.runEager(); });
  const std::uint64_t allocsCaptured =
      poolAllocsDuring([&] { harness.runCaptured(); });
  const auto [msEager, msCaptured] = minPassMsInterleaved(
      [&] { harness.runEager(); }, [&] { harness.runCaptured(); }, kRepeats,
      kInner);

  const bool identical = bitIdentical(outEager, outCaptured);
  const double reduction = reductionPct(allocsEager, allocsCaptured);
  const double speedup = msCaptured > 0 ? msEager / msCaptured : 0.0;

  const auto& g = harness.captured;
  const std::size_t nodesOriginal = g.original().nodes.size();
  const std::size_t nodesOptimized = g.optimized().nodes.size();

  std::printf(
      "\nmobilenet (alpha 0.125, 32x32, BN): eager %.3f ms -> captured %.3f ms"
      " (%.2fx)\n"
      "pool allocs per run: %llu -> %llu (-%.1f%%)\n"
      "graph: %zu nodes captured -> %zu after fold/fuse/regions/dce\n"
      "outputs bit-identical: %s\n",
      msEager, msCaptured, speedup,
      static_cast<unsigned long long>(allocsEager),
      static_cast<unsigned long long>(allocsCaptured), reduction,
      nodesOriginal, nodesOptimized, identical ? "yes" : "NO");

  // ---- part 2: elementwise chain, fused vs unfused-captured ------------
  ChainHarness chain;
  std::vector<float> chainEager, chainFused, chainUnfused;
  for (int i = 0; i < 3; ++i) {
    chainEager = chain.runEager();
    chainFused = chain.run(chain.fused, chain.x);
    chainUnfused = chain.run(chain.unfused, chain.x);
  }
  const auto [msChainUnfused, msChainFused] = minPassMsInterleaved(
      [&] { chain.run(chain.unfused, chain.x); },
      [&] { chain.run(chain.fused, chain.x); }, kRepeats, kInner);
  const bool chainIdentical = bitIdentical(chainEager, chainFused) &&
                              bitIdentical(chainEager, chainUnfused);
  const double chainSpeedup =
      msChainFused > 0 ? msChainUnfused / msChainFused : 0.0;
  std::printf(
      "\nelementwise chain (12 ops, [16,4096]): unfused-captured %.3f ms ->"
      " fused %.3f ms (%.2fx)\n"
      "chain outputs bit-identical (eager == fused == unfused): %s\n",
      msChainUnfused, msChainFused, chainSpeedup,
      chainIdentical ? "yes" : "NO");

  // ---- part 3: shape-polymorphic plan reuse ----------------------------
  // Prime every batch size once (two classes: {1,·} and {n,·}), then a
  // warm sweep must instantiate nothing new.
  std::vector<Tensor> polyFeeds;
  for (int batch : {1, 4, 7, 16}) {
    polyFeeds.push_back(
        o::randomNormal(tfjs::Shape{batch, 4096}, 0, 1, 30 + batch));
  }
  for (const Tensor& f : polyFeeds) chain.run(chain.fused, f);
  const std::uint64_t compilesBefore = counterValue("graph.plan_compiles");
  bool polyIdentical = true;
  for (const Tensor& f : polyFeeds) {
    std::vector<float> got = chain.run(chain.fused, f);
    std::vector<Tensor> ys = tfjs::tidyAll([&] { return chain.body({f}); });
    polyIdentical = polyIdentical && bitIdentical(got, ys[0].dataSync());
    for (Tensor& y : ys) y.dispose();
  }
  const std::uint64_t planRecompiles =
      counterValue("graph.plan_compiles") - compilesBefore;
  std::printf(
      "shape polymorphism: %llu plan re-instantiations across batch sizes"
      " {1,4,7,16} (want 0); outputs bit-identical: %s\n",
      static_cast<unsigned long long>(planRecompiles),
      polyIdentical ? "yes" : "NO");

  tfjs::bench::Json doc = tfjs::bench::Json::object();
  doc.set("bench", "graph_exec");
  doc.set("backend", "native");
  doc.set("workload", "MobileNetV1 alpha=0.125 32x32 BN, batch 1");
  doc.set("ms_eager", msEager);
  doc.set("ms_captured", msCaptured);
  doc.set("speedup", speedup);
  doc.set("pool_allocs_eager", static_cast<double>(allocsEager));
  doc.set("pool_allocs_captured", static_cast<double>(allocsCaptured));
  doc.set("alloc_reduction_pct", reduction);
  doc.set("nodes_captured", static_cast<double>(nodesOriginal));
  doc.set("nodes_optimized", static_cast<double>(nodesOptimized));
  doc.set("folded_nodes", static_cast<double>(counterValue("graph.folded_nodes")));
  doc.set("fused_nodes", static_cast<double>(counterValue("graph.fused_nodes")));
  doc.set("dce_removed", static_cast<double>(counterValue("graph.dce_removed")));
  doc.set("bit_identical", tfjs::bench::Json::boolean(identical));
  doc.set("ms_chain_unfused", msChainUnfused);
  doc.set("ms_chain_fused", msChainFused);
  doc.set("chain_speedup", chainSpeedup);
  doc.set("chain_bit_identical", tfjs::bench::Json::boolean(chainIdentical));
  doc.set("fused_regions", static_cast<double>(counterValue("graph.fused_regions")));
  doc.set("region_ops", static_cast<double>(counterValue("graph.region_ops")));
  doc.set("plan_compiles", static_cast<double>(counterValue("graph.plan_compiles")));
  doc.set("plan_recompiles_batch_sweep", static_cast<double>(planRecompiles));
  doc.set("arena_evictions", static_cast<double>(counterValue("pool.arena_evictions")));
  doc.set("poly_bit_identical", tfjs::bench::Json::boolean(polyIdentical));
  doc.set("samples", kRepeats);
  doc.set("smoke", tfjs::bench::Json::boolean(smoke));
  doc.writeFile("BENCH_graph.json");

  const bool mobilenetPass = speedup >= 1.2 && reduction >= 90.0 && identical;
  const bool chainPass = chainSpeedup >= 1.5 && chainIdentical;
  const bool polyPass = planRecompiles == 0 && polyIdentical;
  std::printf(
      "gate mobilenet (>=1.2x, >=90%% fewer pool allocs, bit-identical):"
      " %s\n"
      "gate chain (fused >=1.5x over unfused-captured, bit-identical): %s\n"
      "gate shape-poly (0 recompiles across {1,4,7,16}, bit-identical):"
      " %s\n",
      mobilenetPass ? "PASS" : "FAIL", chainPass ? "PASS" : "FAIL",
      polyPass ? "PASS" : "FAIL");

  for (Tensor& f : polyFeeds) f.dispose();
  chain.dispose();
  harness.captured.dispose();
  harness.x.dispose();
  g_harness = nullptr;
  return mobilenetPass && chainPass && polyPass ? 0 : 1;
}
