// Graph-capture bench (ISSUE 9 acceptance gate): a captured + optimized +
// memory-planned MobileNet forward pass must beat the eager Layers path by
// >= 1.1x and perform >= 90% fewer per-op pool allocations — at
// bit-identical outputs (the executor replays through the public ops layer,
// so every kernel is the one eager would have dispatched).
//
// Workload: MobileNetV1 alpha=0.125 at 32x32 with BatchNorm, batch 1, on the
// native backend. Small on purpose: single-image inference is where
// per-op dispatch, scope bookkeeping, and allocator traffic dominate —
// exactly what capture amortizes. The captured path wins from
//  * one-time pass work (BN/const folding, bias+activation fusion, DCE)
//    done at construction instead of every predict();
//  * the static memory plan: warm runs serve every intermediate from a
//    pre-sized arena, so the shared pool and the heap see zero traffic;
//  * eager disposal from liveness (peak memory tracks the plan, not the
//    scope), which also lets elementwise steps whose input dies at that
//    node run in place via the move-consuming op overloads.
//
// Per-op pool allocations are counted at the BufferPool: shared-pool
// acquires (hits + misses + bypasses) plus arena misses. Arena *hits* are
// planned reuse of graph-owned storage, not allocations.
//
// Emits BENCH_graph.json at the repo root.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "backends/register.h"
#include "core/buffer_pool.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "graph/capture.h"
#include "graph/executor.h"
#include "json_out.h"
#include "models/mobilenet.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using tfjs::Tensor;
using tfjs::core::BufferPool;

namespace {

tfjs::models::MobileNetOptions benchOptions() {
  tfjs::models::MobileNetOptions opts;
  opts.alpha = 0.125f;
  opts.inputSize = 32;
  opts.numClasses = 10;
  opts.withBatchNorm = true;  // BN mul/add chains: fold + fuse fodder
  opts.seed = 7;
  return opts;
}

std::uint64_t counterValue(const char* name) {
  return tfjs::metrics::Registry::get().counter(name).value();
}

/// Pool allocations performed by `fn`: shared-pool acquires plus arena
/// misses. Warm captured runs should drive this to (near) zero.
template <typename Fn>
std::uint64_t poolAllocsDuring(Fn&& fn) {
  const auto before = BufferPool::get().stats();
  const std::uint64_t arenaMissBefore = counterValue("pool.arena_misses");
  fn();
  const auto after = BufferPool::get().stats();
  return (after.hits - before.hits) + (after.misses - before.misses) +
         (after.bypasses - before.bypasses) +
         (counterValue("pool.arena_misses") - arenaMissBefore);
}

/// One timing sample: per-pass ms over `inner` back-to-back passes.
/// Sub-millisecond passes need batching — a single pass is within
/// scheduler-jitter range of the clock.
template <typename Fn>
double batchPassMs(Fn&& fn, int inner) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < inner; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count() / inner;
}

/// Times two workloads interleaved (A,B,A,B,...) and reports each one's
/// minimum batch time. Interleaving means external load (this is a shared
/// 1-core box) perturbs both the same way; the min is the quiet-machine
/// cost, which is what the A/B ratio is about.
template <typename FnA, typename FnB>
std::pair<double, double> minPassMsInterleaved(FnA&& a, FnB&& b, int repeats,
                                               int inner) {
  double minA = 1e300, minB = 1e300;
  for (int r = 0; r < repeats; ++r) {
    minA = std::min(minA, batchPassMs(a, inner));
    minB = std::min(minB, batchPassMs(b, inner));
  }
  return {minA, minB};
}

bool bitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

double reductionPct(std::uint64_t base, std::uint64_t opt) {
  return base == 0 ? 0.0
                   : 100.0 * (1.0 - static_cast<double>(opt) /
                                        static_cast<double>(base));
}

struct Harness {
  std::unique_ptr<tfjs::layers::Sequential> model;
  Tensor x;
  tfjs::graph::CapturedGraph captured;

  Harness() {
    model = tfjs::models::buildMobileNetV1(benchOptions());
    x = o::randomNormal(
        tfjs::Shape{1, benchOptions().inputSize, benchOptions().inputSize, 3},
        0, 1, 11);
    model->predict(x).dispose();  // build weights before capture
    tfjs::graph::Graph g = tfjs::graph::capture(
        [this](const std::vector<Tensor>& ins) {
          return std::vector<Tensor>{model->predict(ins[0])};
        },
        {x});
    captured = tfjs::graph::CapturedGraph(std::move(g),
                                          tfjs::graph::PassOptions::all());
  }

  std::vector<float> runEager() {
    Tensor y = model->predict(x);
    std::vector<float> out = y.dataSync();
    y.dispose();
    return out;
  }

  std::vector<float> runCaptured() {
    std::vector<Tensor> ys = captured.run({x});
    std::vector<float> out = ys[0].dataSync();
    for (Tensor& y : ys) y.dispose();
    return out;
  }
};

Harness* g_harness = nullptr;

// ------------------------------------------------- google-benchmark mirrors

void BM_MobileNetEager(benchmark::State& state) {
  for (auto _ : state) g_harness->runEager();
}
BENCHMARK(BM_MobileNetEager)->Unit(benchmark::kMillisecond);

void BM_MobileNetCaptured(benchmark::State& state) {
  for (auto _ : state) g_harness->runCaptured();
}
BENCHMARK(BM_MobileNetCaptured)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();
  tfjs::setBackend("native");
  constexpr int kRepeats = 50;
  constexpr int kInner = 10;

  Harness harness;
  g_harness = &harness;

  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();

  // Warm both paths: thread pool, pool buckets, fold caches, the arena.
  std::vector<float> outEager, outCaptured;
  for (int i = 0; i < 3; ++i) {
    outEager = harness.runEager();
    outCaptured = harness.runCaptured();
  }

  const std::uint64_t allocsEager =
      poolAllocsDuring([&] { harness.runEager(); });
  const std::uint64_t allocsCaptured =
      poolAllocsDuring([&] { harness.runCaptured(); });
  const auto [msEager, msCaptured] = minPassMsInterleaved(
      [&] { harness.runEager(); }, [&] { harness.runCaptured(); }, kRepeats,
      kInner);

  const bool identical = bitIdentical(outEager, outCaptured);
  const double reduction = reductionPct(allocsEager, allocsCaptured);
  const double speedup = msCaptured > 0 ? msEager / msCaptured : 0.0;

  const auto& g = harness.captured;
  const std::size_t nodesOriginal = g.original().nodes.size();
  const std::size_t nodesOptimized = g.optimized().nodes.size();

  std::printf(
      "\nmobilenet (alpha 0.125, 32x32, BN): eager %.3f ms -> captured %.3f ms"
      " (%.2fx)\n"
      "pool allocs per run: %llu -> %llu (-%.1f%%)\n"
      "graph: %zu nodes captured -> %zu after fold/fuse/dce\n"
      "outputs bit-identical: %s\n",
      msEager, msCaptured, speedup,
      static_cast<unsigned long long>(allocsEager),
      static_cast<unsigned long long>(allocsCaptured), reduction,
      nodesOriginal, nodesOptimized, identical ? "yes" : "NO");

  tfjs::bench::Json doc = tfjs::bench::Json::object();
  doc.set("bench", "graph_exec");
  doc.set("backend", "native");
  doc.set("workload", "MobileNetV1 alpha=0.125 32x32 BN, batch 1");
  doc.set("ms_eager", msEager);
  doc.set("ms_captured", msCaptured);
  doc.set("speedup", speedup);
  doc.set("pool_allocs_eager", static_cast<double>(allocsEager));
  doc.set("pool_allocs_captured", static_cast<double>(allocsCaptured));
  doc.set("alloc_reduction_pct", reduction);
  doc.set("nodes_captured", static_cast<double>(nodesOriginal));
  doc.set("nodes_optimized", static_cast<double>(nodesOptimized));
  doc.set("folded_nodes", static_cast<double>(counterValue("graph.folded_nodes")));
  doc.set("fused_nodes", static_cast<double>(counterValue("graph.fused_nodes")));
  doc.set("dce_removed", static_cast<double>(counterValue("graph.dce_removed")));
  doc.set("bit_identical", tfjs::bench::Json::boolean(identical));
  doc.set("samples", kRepeats);
  doc.writeFile("BENCH_graph.json");

  const bool pass = speedup >= 1.1 && reduction >= 90.0 && identical;
  std::printf("gate (>=1.1x, >=90%% fewer pool allocs, bit-identical): %s\n",
              pass ? "PASS" : "FAIL");

  harness.captured.dispose();
  harness.x.dispose();
  g_harness = nullptr;
  return pass ? 0 : 1;
}
