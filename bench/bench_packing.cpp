// E5 — the packing optimization (paper section 3.9): "we store floating
// point values in all 4 channels of a texel (instead of using only 1
// channel). Packing resulted in 1.3-1.4x speedup of models such as PoseNet
// across both mobile and desktop devices."
//
// A PoseNet-style conv stack (the truncated-MobileNet backbone + heads) runs
// on two webgl-sim instances that differ only in texel layout. The win in
// the cost model comes from vec4 fetches (4 values per sampler access,
// Listing 2) and 4x fewer shader invocations for element-wise programs;
// the compute term is unchanged, bounding the speedup well below 4x.
#include <cstdio>

#include "backends/register.h"
#include "backends/webgl/webgl_backend.h"
#include "core/engine.h"
#include "models/posenet.h"
#include "data/synthetic.h"

using namespace tfjs::backends::webgl;

namespace {

double posenetModeledMs(const std::string& backend, int runs) {
  tfjs::setBackend(backend);
  auto& b = dynamic_cast<WebGLBackend&>(tfjs::Engine::get().backend());
  tfjs::models::PoseNetOptions opts;
  opts.inputSize = 129;  // PoseNet web-demo scale
  tfjs::models::PoseNet posenet(opts);
  tfjs::data::Image img = tfjs::data::makeTestImage(129, 129, 60, 60);
  posenet.estimateSinglePose(img);  // warm-up
  b.flush();
  const double before = b.kernelTimeMs();
  for (int i = 0; i < runs; ++i) posenet.estimateSinglePose(img);
  b.flush();
  return (b.kernelTimeMs() - before) / runs;
}

}  // namespace

int main() {
  tfjs::backends::registerAll();
  registerBackendVariant("webgl-unpacked", [] {
    WebGLOptions o;
    o.packed = false;
    return o;
  }());
  registerBackendVariant("webgl-packed", [] {
    WebGLOptions o;
    o.packed = true;
    return o;
  }());

  std::printf("== Packing (section 3.9): PoseNet 0.5_129, modeled GPU time "
              "==\n(paper: packing gave 1.3-1.4x on PoseNet)\n\n");
  const int runs = 3;
  const double unpackedMs = posenetModeledMs("webgl-unpacked", runs);
  const double packedMs = posenetModeledMs("webgl-packed", runs);
  std::printf("unpacked (R channel only):   %8.2f ms\n", unpackedMs);
  std::printf("packed (RGBA texels):        %8.2f ms\n", packedMs);
  std::printf("speedup:                     %8.2fx\n", unpackedMs / packedMs);
  const double speedup = unpackedMs / packedMs;
  std::printf("\nShape check: packed faster, bounded by the 4x fetch win "
              "(1.0 < s <= 4.0): %s\n",
              speedup > 1.0 && speedup <= 4.0 ? "HOLDS" : "VIOLATED");
  return 0;
}
