// Allocation-reuse bench (ISSUE 5 acceptance gate): with the buffer pool,
// in-place move-consuming ops and fused Dense/Conv epilogues enabled, a
// steady-state pass must perform >= 50% fewer heap allocations than the
// naive allocate-per-op idiom with the pool disabled — at bit-identical
// outputs (the fused epilogue and in-place writes change where results are
// stored, never what they are).
//
// Two workloads on the native backend:
//  * chain  — a ~50-op elementwise chain on [256,256] (relu/add/mul),
//    move-consuming in the optimized config so every op overwrites its
//    input in place;
//  * model  — a MobileNet-flavoured stack (two 1x1 convs + GAP + two Dense
//    layers), fused layer path vs the manual matMul->add->activation
//    composition.
//
// Heap allocations are counted at the pool: every backend buffer request
// goes through BufferPool::acquire, so `misses + bypasses` is exactly the
// number of operator-new float allocations.
//
// Emits BENCH_alloc.json at the repo root.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <vector>

#include "backends/register.h"
#include "core/buffer_pool.h"
#include "core/engine.h"
#include "core/metrics.h"
#include "json_out.h"
#include "layers/conv_layers.h"
#include "layers/core_layers.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using tfjs::Tensor;
using tfjs::core::BufferPool;

namespace {

constexpr int kChainRounds = 16;  // 3 ops per round + head/tail ~ 50 ops

// ------------------------------------------------------------------- chain

/// Optimized idiom: move-consuming ops, every step writes into its input.
std::vector<float> chainOptimized(const Tensor& x, const Tensor& one,
                                  const Tensor& c, const Tensor& m) {
  Tensor y = o::mul(x, one);
  for (int i = 0; i < kChainRounds; ++i) {
    y = o::relu(std::move(y));
    y = o::add(std::move(y), c);
    y = o::mul(std::move(y), m);
  }
  Tensor s = o::sum(y);
  y.dispose();
  const std::vector<float> out = s.dataSync();
  s.dispose();
  return out;
}

/// Naive idiom: allocate-per-op, dispose the previous intermediate.
std::vector<float> chainBaseline(const Tensor& x, const Tensor& one,
                                 const Tensor& c, const Tensor& m) {
  Tensor y = o::mul(x, one);
  const auto step = [&y](Tensor next) {
    y.dispose();
    y = next;
  };
  for (int i = 0; i < kChainRounds; ++i) {
    step(o::relu(y));
    step(o::add(y, c));
    step(o::mul(y, m));
  }
  Tensor s = o::sum(y);
  y.dispose();
  const std::vector<float> out = s.dataSync();
  s.dispose();
  return out;
}

// ------------------------------------------------------------------- model

struct ModelStack {
  tfjs::layers::Conv2D conv1, conv2;
  tfjs::layers::Dense dense1, dense2;

  static tfjs::layers::Conv2DOptions convOpts(int filters) {
    tfjs::layers::Conv2DOptions opts;
    opts.filters = filters;
    opts.kernelH = opts.kernelW = 1;  // 1x1 = the pointwise MobileNet conv
    opts.activation = "relu";
    return opts;
  }
  static tfjs::layers::DenseOptions denseOpts(int units,
                                              const char* activation) {
    tfjs::layers::DenseOptions opts;
    opts.units = units;
    opts.activation = activation;
    return opts;
  }

  ModelStack()
      : conv1(convOpts(64)), conv2(convOpts(64)),
        dense1(denseOpts(128, "relu")), dense2(denseOpts(10, "sigmoid")) {}
};

/// Fused layer path: Dense/Conv2D route through fusedMatMul/fusedConv2d.
std::vector<float> modelFused(const Tensor& x, ModelStack& stack) {
  Tensor h1 = stack.conv1.apply(x);
  Tensor h2 = stack.conv2.apply(h1);
  h1.dispose();
  Tensor g = o::mean(h2, std::array<int, 2>{1, 2});
  h2.dispose();
  Tensor d1 = stack.dense1.apply(g);
  g.dispose();
  Tensor d2 = stack.dense2.apply(d1);
  d1.dispose();
  Tensor s = o::sum(d2);
  d2.dispose();
  const std::vector<float> out = s.dataSync();
  s.dispose();
  return out;
}

/// Manual composition from the same weights — the pre-fusion op sequence
/// the pattern matcher replaces. Must produce bit-identical values.
std::vector<float> modelUnfused(const Tensor& x, ModelStack& stack) {
  const auto convBlock = [](const Tensor& in, const tfjs::layers::Conv2D& l) {
    const auto& w = l.weights();
    Tensor y = o::conv2d(in, w[0].value(), 1, 1, tfjs::PadMode::kSame);
    Tensor yb = o::add(y, w[1].value());
    y.dispose();
    Tensor r = o::relu(yb);
    yb.dispose();
    return r;
  };
  const auto denseBlock = [](const Tensor& in, const tfjs::layers::Dense& l,
                             bool sigmoid) {
    const auto& w = l.weights();
    Tensor y = o::matMul(in, w[0].value());
    Tensor yb = o::add(y, w[1].value());
    y.dispose();
    Tensor a = sigmoid ? o::sigmoid(yb) : o::relu(yb);
    yb.dispose();
    return a;
  };
  Tensor h1 = convBlock(x, stack.conv1);
  Tensor h2 = convBlock(h1, stack.conv2);
  h1.dispose();
  Tensor g = o::mean(h2, std::array<int, 2>{1, 2});
  h2.dispose();
  Tensor d1 = denseBlock(g, stack.dense1, false);
  g.dispose();
  Tensor d2 = denseBlock(d1, stack.dense2, true);
  d1.dispose();
  Tensor s = o::sum(d2);
  d2.dispose();
  const std::vector<float> out = s.dataSync();
  s.dispose();
  return out;
}

// -------------------------------------------------------------- measurement

/// Heap allocations performed by `fn`, as seen at the pool: misses allocate
/// when the pool is on; every acquire is a bypass allocation when it is off.
template <typename Fn>
std::uint64_t allocsDuring(Fn&& fn) {
  const auto before = BufferPool::get().stats();
  fn();
  const auto after = BufferPool::get().stats();
  return (after.misses - before.misses) + (after.bypasses - before.bypasses);
}

template <typename Fn>
double medianPassMs(Fn&& fn, int repeats) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool bitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

double reductionPct(std::uint64_t base, std::uint64_t opt) {
  return base == 0 ? 0.0
                   : 100.0 * (1.0 - static_cast<double>(opt) /
                                        static_cast<double>(base));
}

// ------------------------------------------------- google-benchmark mirrors

void BM_ChainBaseline(benchmark::State& state) {
  tfjs::setBackend("native");
  BufferPool::get().setEnabled(false);
  Tensor x = o::randomNormal(tfjs::Shape{256, 256}, 0, 1, 1);
  Tensor one = o::scalar(1.f), c = o::scalar(0.001f), m = o::scalar(0.9995f);
  for (auto _ : state) chainBaseline(x, one, c, m);
  for (Tensor t : {x, one, c, m}) t.dispose();
  BufferPool::get().setEnabled(true);
}
BENCHMARK(BM_ChainBaseline)->Unit(benchmark::kMicrosecond);

void BM_ChainPooledInPlace(benchmark::State& state) {
  tfjs::setBackend("native");
  BufferPool::get().setEnabled(true);
  Tensor x = o::randomNormal(tfjs::Shape{256, 256}, 0, 1, 1);
  Tensor one = o::scalar(1.f), c = o::scalar(0.001f), m = o::scalar(0.9995f);
  for (auto _ : state) chainOptimized(x, one, c, m);
  for (Tensor t : {x, one, c, m}) t.dispose();
}
BENCHMARK(BM_ChainPooledInPlace)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();

  tfjs::setBackend("native");
  auto& pool = BufferPool::get();
  constexpr int kRepeats = 9;

  Tensor cx = o::randomNormal(tfjs::Shape{256, 256}, 0, 1, 1);
  Tensor one = o::scalar(1.f), c = o::scalar(0.001f), m = o::scalar(0.9995f);
  Tensor mx = o::randomNormal(tfjs::Shape{4, 14, 14, 32}, 0, 1, 2);
  ModelStack stack;
  // Build the layers (weight init) before any measurement.
  modelFused(mx, stack);

  // Baseline: pool off, allocate-per-op idiom, unfused composition.
  pool.setEnabled(false);
  chainBaseline(cx, one, c, m);  // warm thread pool / page cache
  modelUnfused(mx, stack);
  std::vector<float> chainOutBase, modelOutBase;
  const std::uint64_t chainAllocsBase =
      allocsDuring([&] { chainOutBase = chainBaseline(cx, one, c, m); });
  const std::uint64_t modelAllocsBase =
      allocsDuring([&] { modelOutBase = modelUnfused(mx, stack); });
  const double chainMsBase =
      medianPassMs([&] { chainBaseline(cx, one, c, m); }, kRepeats);
  const double modelMsBase =
      medianPassMs([&] { modelUnfused(mx, stack); }, kRepeats);

  // Optimized: pool on, move-consuming chain, fused layer path.
  pool.setEnabled(true);
  auto& inplace = tfjs::metrics::Registry::get().counter(
      "engine.inplace_reuses");
  for (int i = 0; i < 3; ++i) {  // warm the pool buckets
    chainOptimized(cx, one, c, m);
    modelFused(mx, stack);
  }
  const auto inplaceBefore = inplace.value();
  std::vector<float> chainOutOpt, modelOutOpt;
  const std::uint64_t chainAllocsOpt =
      allocsDuring([&] { chainOutOpt = chainOptimized(cx, one, c, m); });
  const std::uint64_t modelAllocsOpt =
      allocsDuring([&] { modelOutOpt = modelFused(mx, stack); });
  const std::uint64_t inplaceReuses = inplace.value() - inplaceBefore;
  const double chainMsOpt =
      medianPassMs([&] { chainOptimized(cx, one, c, m); }, kRepeats);
  const double modelMsOpt =
      medianPassMs([&] { modelFused(mx, stack); }, kRepeats);

  const bool chainIdentical = bitIdentical(chainOutBase, chainOutOpt);
  const bool modelIdentical = bitIdentical(modelOutBase, modelOutOpt);
  const double chainReduction = reductionPct(chainAllocsBase, chainAllocsOpt);
  const double modelReduction = reductionPct(modelAllocsBase, modelAllocsOpt);

  for (Tensor t : {cx, one, c, m, mx}) t.dispose();

  std::printf("\nchain: %llu -> %llu allocs (-%.1f%%), %.3f -> %.3f ms\n"
              "model: %llu -> %llu allocs (-%.1f%%), %.3f -> %.3f ms\n"
              "in-place takeovers per optimized pass: %llu\n"
              "outputs bit-identical: chain=%s model=%s\n",
              static_cast<unsigned long long>(chainAllocsBase),
              static_cast<unsigned long long>(chainAllocsOpt), chainReduction,
              chainMsBase, chainMsOpt,
              static_cast<unsigned long long>(modelAllocsBase),
              static_cast<unsigned long long>(modelAllocsOpt), modelReduction,
              modelMsBase, modelMsOpt,
              static_cast<unsigned long long>(inplaceReuses),
              chainIdentical ? "yes" : "NO", modelIdentical ? "yes" : "NO");

  tfjs::bench::Json doc = tfjs::bench::Json::object();
  doc.set("bench", "alloc_reuse");
  doc.set("backend", "native");
  tfjs::bench::Json chain = tfjs::bench::Json::object();
  chain.set("workload", "~50-op elementwise chain, 256x256");
  chain.set("allocs_baseline", static_cast<double>(chainAllocsBase));
  chain.set("allocs_optimized", static_cast<double>(chainAllocsOpt));
  chain.set("alloc_reduction_pct", chainReduction);
  chain.set("ms_baseline", chainMsBase);
  chain.set("ms_optimized", chainMsOpt);
  chain.set("bit_identical", tfjs::bench::Json::boolean(chainIdentical));
  doc.set("chain", std::move(chain));
  tfjs::bench::Json model = tfjs::bench::Json::object();
  model.set("workload",
            "2x conv1x1(64)+relu, GAP, dense(128)+relu, dense(10)+sigmoid");
  model.set("allocs_baseline", static_cast<double>(modelAllocsBase));
  model.set("allocs_optimized", static_cast<double>(modelAllocsOpt));
  model.set("alloc_reduction_pct", modelReduction);
  model.set("ms_baseline", modelMsBase);
  model.set("ms_optimized", modelMsOpt);
  model.set("bit_identical", tfjs::bench::Json::boolean(modelIdentical));
  doc.set("model", std::move(model));
  doc.set("inplace_reuses_per_pass", static_cast<double>(inplaceReuses));
  doc.set("samples", kRepeats);
  doc.writeFile("BENCH_alloc.json");

  const bool pass = chainReduction >= 50.0 && modelReduction >= 50.0 &&
                    chainIdentical && modelIdentical;
  std::printf("gate (>=50%% fewer allocs, bit-identical): %s\n",
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
