// E1 — Table 1 reproduction: MobileNet v1 inference time per backend.
//
// Paper (MobileNet v1 1.0, 224x224x3, averaged over 100 runs):
//   Plain JS               3426 ms      1x
//   WebGL (Intel Iris Pro)   49 ms     71x
//   WebGL (GTX 1080)          5 ms    685x
//   Node.js CPU w/ AVX2      87 ms     39x
//   Node.js CUDA (GTX 1080)   3 ms   1105x
//
// Here (DESIGN.md section 6): the plain-CPU and native backends are measured
// wall-clock on this machine; the GPU rows use the discrete-event device
// model (public hardware constants; FLOP/fetch counts from the actually
// executed kernels). The *shape* — who wins and by roughly what factor — is
// the reproduction target, not the absolute numbers.
//
// Flags: --alpha <f> --size <n> --runs <n> (defaults 1.0 / 224 / paper-style
// averaging with fewer repeats on the slow simulated paths), plus
// --json <path> (default BENCH_table1.json; run from the repo root so the
// file lands there). The native row is additionally swept at
// 1/2/4/hardware_concurrency intra-op threads and recorded in the JSON.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>

#include "backends/register.h"
#include "backends/webgl/webgl_backend.h"
#include "bench/json_out.h"
#include "core/engine.h"
#include "models/mobilenet.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using tfjs::backends::webgl::WebGLOptions;

namespace {

struct Row {
  std::string label;
  double ms = 0;
  std::string basis;
};

/// One inference, returning (wallMs, kernelMs).
tfjs::TimingInfo inferOnce(tfjs::layers::Sequential& model,
                           const tfjs::Tensor& x) {
  return tfjs::time([&] {
    tfjs::Tensor y = model.predict(x);
    y.dataSync();
    y.dispose();
  });
}

Row runBackend(const std::string& backend, const std::string& label,
               const tfjs::models::MobileNetOptions& mn, int runs,
               bool modeled) {
  tfjs::setBackend(backend);
  auto model = tfjs::models::buildMobileNetV1(mn);
  tfjs::Tensor x = o::randomNormal(
      tfjs::Shape{1, mn.inputSize, mn.inputSize, 3}, 0, 1, 7);
  inferOnce(*model, x);  // warm-up: builds weights, primes the recycler
  double wallSum = 0, kernelSum = 0;
  for (int i = 0; i < runs; ++i) {
    tfjs::TimingInfo t = inferOnce(*model, x);
    wallSum += t.wallMs;
    kernelSum += t.kernelMs;
  }
  x.dispose();
  model->dispose();
  Row row;
  row.label = label;
  row.ms = (modeled ? kernelSum : wallSum) / runs;
  row.basis = modeled ? "modeled device" : "measured wall";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();

  tfjs::models::MobileNetOptions mn;
  int fastRuns = 100, slowRuns = 2;
  std::string jsonPath = "BENCH_table1.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--alpha") == 0) {
      mn.alpha = std::stof(argv[++i]);
    } else if (std::strcmp(argv[i], "--size") == 0) {
      mn.inputSize = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--runs") == 0) {
      fastRuns = slowRuns = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      jsonPath = argv[++i];
    }
  }

  // GPU-device variants share the simulator; only the cost model differs.
  using namespace tfjs::backends::webgl;
  registerBackendVariant("webgl-gtx1080", [] {
    WebGLOptions o;
    o.device = gtx1080WebGL();
    return o;
  }());
  registerBackendVariant("cuda-gtx1080", [] {
    WebGLOptions o;
    o.device = gtx1080Cuda();
    return o;
  }());

  std::printf(
      "== Table 1: MobileNet v1 %.2f_%d single inference ==\n"
      "(paper: plain JS 3426ms, WebGL IrisPro 49ms (71x), WebGL GTX1080 5ms "
      "(685x),\n Node CPU AVX2 87ms (39x), Node CUDA GTX1080 3ms (1105x))\n\n",
      mn.alpha, mn.inputSize);
  std::printf("model FLOPs per inference: %.3f G\n\n",
              tfjs::models::mobileNetV1Flops(mn) / 1e9);

  std::vector<Row> rows;
  rows.push_back(
      runBackend("cpu", "Plain JS analogue (interpreted CPU)", mn, slowRuns,
                 /*modeled=*/false));
  rows.push_back(runBackend("webgl", "WebGL (Intel Iris Pro)", mn, slowRuns,
                            /*modeled=*/true));
  rows.push_back(runBackend("webgl-gtx1080", "WebGL (GTX 1080)", mn, slowRuns,
                            /*modeled=*/true));
  rows.push_back(runBackend("native", "Native CPU w/ AVX (TF-C analogue)",
                            mn, fastRuns, /*modeled=*/false));
  rows.push_back(runBackend("cuda-gtx1080", "CUDA (GTX 1080)", mn, slowRuns,
                            /*modeled=*/true));

  const double base = rows[0].ms;
  std::printf("%-36s %12s %10s   %s\n", "backend", "time (ms)", "speedup",
              "basis");
  for (const auto& r : rows) {
    std::printf("%-36s %12.2f %9.1fx   %s\n", r.label.c_str(), r.ms,
                base / r.ms, r.basis.c_str());
  }
  std::printf(
      "\nShape check: plain << {WebGL IrisPro, native CPU} << GTX-class; "
      "CUDA > WebGL on the same GPU: %s\n",
      (rows[0].ms > 10 * rows[1].ms && rows[0].ms > 10 * rows[3].ms &&
       rows[1].ms > rows[2].ms && rows[2].ms > rows[4].ms)
          ? "HOLDS"
          : "VIOLATED");

  // The native row again, at each intra-op thread count.
  const unsigned hwRaw = std::thread::hardware_concurrency();
  const int hw = hwRaw == 0 ? 1 : static_cast<int>(hwRaw);
  std::printf("\n== native backend vs intra-op threads ==\n");
  struct SweepPoint {
    int threads;
    double ms;
  };
  std::vector<SweepPoint> sweep;
  for (int t : std::set<int>{1, 2, 4, hw}) {
    tfjs::setNumThreads(t);
    Row r = runBackend("native", "native", mn, fastRuns, /*modeled=*/false);
    sweep.push_back({t, r.ms});
    std::printf("  %2d threads: %10.2f ms (%.2fx vs 1 thread)\n", t, r.ms,
                sweep.front().ms / r.ms);
  }

  using tfjs::bench::Json;
  Json jRows = Json::array();
  for (const auto& r : rows) {
    jRows.push(Json::object()
                   .set("label", r.label)
                   .set("ms", r.ms)
                   .set("speedup_vs_plain", base / r.ms)
                   .set("basis", r.basis));
  }
  Json jSweep = Json::array();
  for (const auto& p : sweep) {
    jSweep.push(Json::object()
                    .set("threads", p.threads)
                    .set("ms", p.ms)
                    .set("speedup_vs_1", sweep.front().ms / p.ms));
  }
  Json doc = Json::object();
  doc.set("bench", "bench_table1_backends");
  doc.set("model", Json::object()
                       .set("name", "mobilenet_v1")
                       .set("alpha", mn.alpha)
                       .set("input_size", mn.inputSize)
                       .set("gflops", tfjs::models::mobileNetV1Flops(mn) / 1e9));
  doc.set("machine",
          Json::object().set("hardware_concurrency", hw));
  doc.set("rows", std::move(jRows));
  doc.set("native_threads_sweep", std::move(jSweep));
  if (!doc.writeFile(jsonPath)) return 1;
  std::printf("\nwrote %s\n", jsonPath.c_str());
  return 0;
}
