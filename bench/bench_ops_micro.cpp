// Op-level microbenchmarks across the three backends: matMul / conv2d /
// depthwiseConv2d / softmax size sweeps. These quantify the per-backend
// character Table 1 aggregates — the interpreted CPU's per-element dispatch,
// the native backend's blocked GEMM, and the webgl-sim executor (wall time
// is the simulator's host cost; kernel time is the modeled device).
#include <benchmark/benchmark.h>

#include "backends/register.h"
#include "core/engine.h"
#include "ops/ops.h"

namespace o = tfjs::ops;

namespace {

const char* backendForIndex(std::int64_t i) {
  switch (i) {
    case 0: return "cpu";
    case 1: return "native";
    default: return "webgl";
  }
}

void BM_MatMul(benchmark::State& state) {
  tfjs::setBackend(backendForIndex(state.range(0)));
  const int n = static_cast<int>(state.range(1));
  tfjs::Tensor a = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 1);
  tfjs::Tensor b = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 2);
  for (auto _ : state) {
    tfjs::Tensor c = o::matMul(a, b);
    c.dataSync();
    c.dispose();
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
  a.dispose();
  b.dispose();
}
BENCHMARK(BM_MatMul)
    ->ArgsProduct({{0, 1, 2}, {64, 128, 256}})
    ->Unit(benchmark::kMillisecond);

void BM_Conv2D(benchmark::State& state) {
  tfjs::setBackend(backendForIndex(state.range(0)));
  const int size = static_cast<int>(state.range(1));
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{1, size, size, 16}, 0, 1, 3);
  tfjs::Tensor f = o::randomNormal(tfjs::Shape{3, 3, 16, 16}, 0, 1, 4);
  for (auto _ : state) {
    tfjs::Tensor y = o::conv2d(x, f, 1, 1, tfjs::PadMode::kSame);
    y.dataSync();
    y.dispose();
  }
  x.dispose();
  f.dispose();
}
BENCHMARK(BM_Conv2D)
    ->ArgsProduct({{0, 1, 2}, {16, 32}})
    ->Unit(benchmark::kMillisecond);

void BM_DepthwiseConv2D(benchmark::State& state) {
  tfjs::setBackend(backendForIndex(state.range(0)));
  const int size = static_cast<int>(state.range(1));
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{1, size, size, 32}, 0, 1, 5);
  tfjs::Tensor f = o::randomNormal(tfjs::Shape{3, 3, 32, 1}, 0, 1, 6);
  for (auto _ : state) {
    tfjs::Tensor y = o::depthwiseConv2d(x, f, 1, 1, tfjs::PadMode::kSame);
    y.dataSync();
    y.dispose();
  }
  x.dispose();
  f.dispose();
}
BENCHMARK(BM_DepthwiseConv2D)
    ->ArgsProduct({{0, 1, 2}, {32, 64}})
    ->Unit(benchmark::kMillisecond);

void BM_Softmax(benchmark::State& state) {
  tfjs::setBackend(backendForIndex(state.range(0)));
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{64, 1000}, 0, 1, 7);
  for (auto _ : state) {
    tfjs::Tensor y = o::softmax(x);
    y.dataSync();
    y.dispose();
  }
  x.dispose();
}
BENCHMARK(BM_Softmax)->ArgsProduct({{0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
