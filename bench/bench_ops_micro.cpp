// Op-level microbenchmarks across the three backends: matMul / conv2d /
// depthwiseConv2d / softmax size sweeps. These quantify the per-backend
// character Table 1 aggregates — the interpreted CPU's per-element dispatch,
// the native backend's blocked GEMM, and the webgl-sim executor (wall time
// is the simulator's host cost; kernel time is the modeled device).
//
// With --threads-sweep the binary instead measures the native backend's
// intra-op scaling (GEMM 1024x1024 and a 16M-element add by default) at
// 1/2/4/hardware_concurrency threads and writes BENCH_threads.json —
// run it from the repo root so the JSON lands there:
//   ./build/bench/bench_ops_micro --threads-sweep
//       [--json BENCH_threads.json] [--gemm-n 1024] [--add-elems 16777216]
//       [--runs 3]
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "backends/register.h"
#include "bench/json_out.h"
#include "core/engine.h"
#include "ops/ops.h"

namespace o = tfjs::ops;

namespace {

const char* backendForIndex(std::int64_t i) {
  switch (i) {
    case 0: return "cpu";
    case 1: return "native";
    default: return "webgl";
  }
}

void BM_MatMul(benchmark::State& state) {
  tfjs::setBackend(backendForIndex(state.range(0)));
  const int n = static_cast<int>(state.range(1));
  tfjs::Tensor a = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 1);
  tfjs::Tensor b = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 2);
  for (auto _ : state) {
    tfjs::Tensor c = o::matMul(a, b);
    c.dataSync();
    c.dispose();
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
  a.dispose();
  b.dispose();
}
BENCHMARK(BM_MatMul)
    ->ArgsProduct({{0, 1, 2}, {64, 128, 256}})
    ->Unit(benchmark::kMillisecond);

void BM_Conv2D(benchmark::State& state) {
  tfjs::setBackend(backendForIndex(state.range(0)));
  const int size = static_cast<int>(state.range(1));
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{1, size, size, 16}, 0, 1, 3);
  tfjs::Tensor f = o::randomNormal(tfjs::Shape{3, 3, 16, 16}, 0, 1, 4);
  for (auto _ : state) {
    tfjs::Tensor y = o::conv2d(x, f, 1, 1, tfjs::PadMode::kSame);
    y.dataSync();
    y.dispose();
  }
  x.dispose();
  f.dispose();
}
BENCHMARK(BM_Conv2D)
    ->ArgsProduct({{0, 1, 2}, {16, 32}})
    ->Unit(benchmark::kMillisecond);

void BM_DepthwiseConv2D(benchmark::State& state) {
  tfjs::setBackend(backendForIndex(state.range(0)));
  const int size = static_cast<int>(state.range(1));
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{1, size, size, 32}, 0, 1, 5);
  tfjs::Tensor f = o::randomNormal(tfjs::Shape{3, 3, 32, 1}, 0, 1, 6);
  for (auto _ : state) {
    tfjs::Tensor y = o::depthwiseConv2d(x, f, 1, 1, tfjs::PadMode::kSame);
    y.dataSync();
    y.dispose();
  }
  x.dispose();
  f.dispose();
}
BENCHMARK(BM_DepthwiseConv2D)
    ->ArgsProduct({{0, 1, 2}, {32, 64}})
    ->Unit(benchmark::kMillisecond);

void BM_Softmax(benchmark::State& state) {
  tfjs::setBackend(backendForIndex(state.range(0)));
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{64, 1000}, 0, 1, 7);
  for (auto _ : state) {
    tfjs::Tensor y = o::softmax(x);
    y.dataSync();
    y.dispose();
  }
  x.dispose();
}
BENCHMARK(BM_Softmax)->ArgsProduct({{0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

// Native-backend GEMM at explicit thread counts — the scaling curve in
// google-benchmark form (the JSON sweep below is the scripted equivalent).
void BM_MatMulNativeThreads(benchmark::State& state) {
  tfjs::setBackend("native");
  tfjs::setNumThreads(static_cast<int>(state.range(0)));
  const int n = static_cast<int>(state.range(1));
  tfjs::Tensor a = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 1);
  tfjs::Tensor b = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 2);
  for (auto _ : state) {
    tfjs::Tensor c = o::matMul(a, b);
    c.dataSync();
    c.dispose();
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
  a.dispose();
  b.dispose();
}
BENCHMARK(BM_MatMulNativeThreads)
    ->ArgsProduct({{1, 2, 4}, {256, 1024}})
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------- threads sweep mode

/// Average wall ms of `runs` timed calls of f (after one warm-up).
double avgWallMs(int runs, const std::function<void()>& f) {
  f();  // warm-up
  double sum = 0;
  for (int i = 0; i < runs; ++i) sum += tfjs::time(f).wallMs;
  return sum / runs;
}

int runThreadsSweep(const std::string& jsonPath, int gemmN,
                    std::size_t addElems, int runs) {
  tfjs::setBackend("native");
  const unsigned hwRaw = std::thread::hardware_concurrency();
  const int hw = hwRaw == 0 ? 1 : static_cast<int>(hwRaw);
  std::set<int> counts{1, 2, 4, hw};

  tfjs::Tensor a = o::randomNormal(tfjs::Shape{gemmN, gemmN}, 0, 1, 1);
  tfjs::Tensor b = o::randomNormal(tfjs::Shape{gemmN, gemmN}, 0, 1, 2);
  const int addDim = static_cast<int>(addElems);
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{addDim}, 0, 1, 3);
  tfjs::Tensor y = o::randomNormal(tfjs::Shape{addDim}, 0, 1, 4);

  struct Point {
    int threads;
    double gemmMs, addMs;
  };
  std::vector<Point> points;
  std::printf("== native backend intra-op thread sweep ==\n");
  std::printf("hardware_concurrency: %d\n\n", hw);
  char gemmLabel[32];
  std::snprintf(gemmLabel, sizeof gemmLabel, "gemm %dx%d (ms)", gemmN, gemmN);
  std::printf("%8s %18s %14s\n", "threads", gemmLabel, "add (ms)");
  for (int t : counts) {
    tfjs::setNumThreads(t);
    Point p;
    p.threads = t;
    p.gemmMs = avgWallMs(runs, [&] {
      tfjs::tidyVoid([&] { o::matMul(a, b).dataSync(); });
    });
    p.addMs = avgWallMs(runs, [&] {
      tfjs::tidyVoid([&] { o::add(x, y).dataSync(); });
    });
    points.push_back(p);
    std::printf("%8d %18.2f %14.2f\n", t, p.gemmMs, p.addMs);
  }
  a.dispose();
  b.dispose();
  x.dispose();
  y.dispose();

  using tfjs::bench::Json;
  Json machine = Json::object();
  machine.set("hardware_concurrency", hw);
  machine.set("runs_per_point", runs);
  Json gemm = Json::object();
  gemm.set("m", gemmN).set("k", gemmN).set("n", gemmN);
  Json add = Json::object();
  add.set("elems", static_cast<double>(addElems));
  Json gemmPoints = Json::array(), addPoints = Json::array();
  const double gemmBase = points.front().gemmMs;
  const double addBase = points.front().addMs;
  for (const Point& p : points) {
    gemmPoints.push(Json::object()
                        .set("threads", p.threads)
                        .set("ms", p.gemmMs)
                        .set("speedup_vs_1", gemmBase / p.gemmMs));
    addPoints.push(Json::object()
                       .set("threads", p.threads)
                       .set("ms", p.addMs)
                       .set("speedup_vs_1", addBase / p.addMs));
  }
  gemm.set("points", std::move(gemmPoints));
  add.set("points", std::move(addPoints));
  Json doc = Json::object();
  doc.set("bench", "bench_ops_micro --threads-sweep");
  doc.set("backend", "native");
  doc.set("machine", std::move(machine));
  doc.set("gemm", std::move(gemm));
  doc.set("add_same_shape", std::move(add));
  if (!doc.writeFile(jsonPath)) return 1;
  std::printf("\nwrote %s\n", jsonPath.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();

  bool sweep = false;
  std::string jsonPath = "BENCH_threads.json";
  int gemmN = 1024, runs = 3;
  std::size_t addElems = std::size_t{16} * 1024 * 1024;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads-sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (std::strcmp(argv[i], "--gemm-n") == 0 && i + 1 < argc) {
      gemmN = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--add-elems") == 0 && i + 1 < argc) {
      addElems = static_cast<std::size_t>(std::stoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::stoi(argv[++i]);
    }
  }
  if (sweep) return runThreadsSweep(jsonPath, gemmN, addElems, runs);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
