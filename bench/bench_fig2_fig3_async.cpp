// E2/E3 — Figures 2 and 3 reproduction: the browser main-thread timeline
// under blocking dataSync() vs asynchronous data().
//
// Figure 2: "The main thread blocks until the GPU is done executing the
// operations."  Figure 3: "The main thread is released while the GPU is
// executing ... and the data() promise resolves when the tensor is ready."
//
// The workload is the canonical requestAnimationFrame demo loop: each frame
// either (sync) runs an inference and blocks on dataSync(), or (async)
// launches an inference and polls the outstanding data() future — the
// fence-polling pattern of section 4.1.1 — starting the next one when it
// resolves. The simulated 60 FPS event loop runs on the calling thread; the
// GPU is the webgl-sim worker thread, so the blocking really happens.
#include <chrono>
#include <cstdio>
#include <future>

#include "backends/register.h"
#include "core/engine.h"
#include "core/event_loop.h"
#include "ops/ops.h"

namespace o = tfjs::ops;

namespace {

struct Result {
  tfjs::async::FrameStats frames;
  int inferences = 0;
};

Result runTimeline(bool useAsync, double durationMs) {
  tfjs::setBackend("webgl");
  tfjs::Tensor w = o::randomNormal(tfjs::Shape{256, 256}, 0, 1, 1);

  tfjs::async::EventLoop loop(60);
  Result result;

  tfjs::Tensor inFlight;
  std::future<std::vector<float>> pendingData;

  loop.onFrame([&](int) {
    if (!useAsync) {
      // Figure 2: the frame handler computes AND synchronously reads back —
      // the main thread blocks until the GPU finishes.
      tfjs::Tensor y = o::sigmoid(o::matMul(w, w));
      y.dataSync();
      y.dispose();
      ++result.inferences;
      return;
    }
    // Figure 3: at most one inference in flight; poll its promise and kick
    // off the next when it resolves. Painting continues regardless.
    if (!inFlight.defined()) {
      inFlight = o::sigmoid(o::matMul(w, w));
      pendingData = inFlight.data();
    } else if (pendingData.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready) {
      pendingData.get();
      inFlight.dispose();
      inFlight = tfjs::Tensor();
      ++result.inferences;
    }
  });

  result.frames = loop.run(durationMs);
  if (useAsync && pendingData.valid()) {
    pendingData.wait();
    inFlight.dispose();
  }
  tfjs::Engine::get().backend().flush();
  w.dispose();
  return result;
}

}  // namespace

int main() {
  tfjs::backends::registerAll();
  const double durationMs = 1500;

  std::printf("== Figures 2/3: main-thread timeline, 60 FPS UI loop, "
              "%.0f ms window ==\n\n", durationMs);

  Result sync = runTimeline(/*useAsync=*/false, durationMs);
  Result async = runTimeline(/*useAsync=*/true, durationMs);

  std::printf("%-24s %16s %16s\n", "", "dataSync (Fig 2)", "data() (Fig 3)");
  std::printf("%-24s %12d/%-4d %12d/%-4d\n", "frames on-time",
              sync.frames.framesOnTime, sync.frames.framesScheduled,
              async.frames.framesOnTime, async.frames.framesScheduled);
  std::printf("%-24s %16d %16d\n", "frames dropped",
              sync.frames.framesDropped, async.frames.framesDropped);
  std::printf("%-24s %16.1f %16.1f\n", "max stall (ms)",
              sync.frames.maxStallMs, async.frames.maxStallMs);
  std::printf("%-24s %16.1f %16.1f\n", "mean frame lateness (ms)",
              sync.frames.totalLatenessMs /
                  std::max(sync.frames.framesScheduled, 1),
              async.frames.totalLatenessMs /
                  std::max(async.frames.framesScheduled, 1));
  std::printf("%-24s %16d %16d\n", "inferences completed", sync.inferences,
              async.inferences);

  const bool holds =
      async.frames.framesDropped < sync.frames.framesDropped &&
      async.frames.maxStallMs < sync.frames.maxStallMs;
  std::printf("\nShape check: async data() keeps the UI responsive while "
              "dataSync starves it: %s\n", holds ? "HOLDS" : "VIOLATED");
  return 0;
}
