// E6 — the squeezed logical→physical mapping (paper section 4.1): "assume
// the logical shape of tensor A is 4D with shape 1x3x1x2 ... the compiler
// will generate a getA(a, b, c, d) method whose implementation ignores a and
// c ... We observed that this optimization leads to 1.3x speedup on
// average."
//
// The optimization matters for coordinate-addressed samplers: every fetch
// walks the (axis, stride) list the shader compiler generated, and dropping
// size-1 dimensions halves that list for typical batch-1 NHWC activations
// with unit dims. This bench runs coordinate-heavy ops (transpose, pad,
// tile) over [1, h, 1, c] tensors on two webgl-sim instances differing only
// in the squeeze flag, and reports:
//   * measured wall time of the real sampler executing both mappings, and
//   * the per-fetch index-op count the cost model charges (2 ops/dim).
#include <chrono>
#include <cstdio>

#include "backends/register.h"
#include "backends/webgl/webgl_backend.h"
#include "core/engine.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using namespace tfjs::backends::webgl;

namespace {

double runChain(const std::string& backend, int runs) {
  tfjs::setBackend(backend);
  auto& b = dynamic_cast<WebGLBackend&>(tfjs::Engine::get().backend());
  // The paper's shape family: unit batch and a unit spatial dim.
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{1, 384, 1, 384}, 0, 1, 1);
  const std::array<int, 4> perm{0, 3, 2, 1};
  const std::array<std::pair<int, int>, 4> pads{
      {{0, 0}, {1, 1}, {0, 0}, {1, 1}}};
  const std::array<int, 4> reps{1, 2, 1, 1};
  auto pass = [&] {
    tfjs::tidyVoid([&] {
      tfjs::Tensor t = o::transpose(x, perm);
      tfjs::Tensor p = o::pad(t, pads);
      tfjs::Tensor r = o::tile(x, reps);
      p.dataSync();
      r.dataSync();
    });
  };
  pass();  // warm-up
  b.flush();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) pass();
  b.flush();
  const double wallMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count() /
                        runs;
  x.dispose();
  return wallMs;
}

}  // namespace

int main() {
  tfjs::backends::registerAll();
  registerBackendVariant("webgl-generic-map", [] {
    WebGLOptions o;
    o.squeeze = false;
    o.packed = false;
    return o;
  }());
  registerBackendVariant("webgl-squeezed-map", [] {
    WebGLOptions o;
    o.squeeze = true;
    o.packed = false;
    return o;
  }());

  std::printf("== Squeezed coordinate mapping (section 4.1): transpose/pad/"
              "tile over [1,384,1,384] ==\n(paper: 1.3x average)\n\n");
  const int runs = 10;
  const double genericMs = runChain("webgl-generic-map", runs);
  const double squeezedMs = runChain("webgl-squeezed-map", runs);

  // The cost model's per-fetch index-op charge for this shape.
  const tfjs::Shape shape{1, 384, 1, 384};
  std::printf("index ops per fetch: generic %d, squeezed %d\n",
              2 * shape.rank(), 2 * shape.squeezed().rank());
  std::printf("wall per pass: generic %8.2f ms, squeezed %8.2f ms\n",
              genericMs, squeezedMs);
  const double s = genericMs / squeezedMs;
  std::printf("measured speedup: %.3fx\n", s);
  std::printf("\nShape check: squeezed mapping measurably faster "
              "(s > 1.02): %s\n", s > 1.02 ? "HOLDS" : "VIOLATED");
  return 0;
}
