// E4 — Figure 4: element-wise addition executed as a fragment shader.
//
// The paper's figure shows two equally-shaped matrices added by a GLSL
// main() that runs per output texel with no shared memory. This bench runs
// that exact program across sizes on the webgl-sim backend and reports the
// real shader statistics (invocations = output values, fetches = 2 per
// value) plus modeled device time, against the native-CPU wall time for the
// same op.
#include <benchmark/benchmark.h>

#include "backends/register.h"
#include "backends/webgl/webgl_backend.h"
#include "core/engine.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
using tfjs::backends::webgl::WebGLBackend;

namespace {

void BM_Fig4_ShaderAdd(benchmark::State& state) {
  tfjs::setBackend("webgl");
  auto& backend = dynamic_cast<WebGLBackend&>(tfjs::Engine::get().backend());
  const int n = static_cast<int>(state.range(0));
  tfjs::Tensor a = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 1);
  tfjs::Tensor b = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 2);

  const auto statsBefore = backend.gpuStats();
  double modeledMs = 0;
  std::uint64_t programs = 0;
  for (auto _ : state) {
    const double t0 = backend.kernelTimeMs();
    tfjs::Tensor c = o::add(a, b);
    c.dataSync();
    c.dispose();
    modeledMs += backend.kernelTimeMs() - t0;
    ++programs;
  }
  const auto statsAfter = backend.gpuStats();
  state.counters["texel_fetches_per_iter"] = static_cast<double>(
      (statsAfter.texelFetches - statsBefore.texelFetches) / programs);
  state.counters["modeled_gpu_ms"] = modeledMs / static_cast<double>(programs);
  a.dispose();
  b.dispose();
}
BENCHMARK(BM_Fig4_ShaderAdd)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_Fig4_NativeAdd(benchmark::State& state) {
  tfjs::setBackend("native");
  const int n = static_cast<int>(state.range(0));
  tfjs::Tensor a = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 1);
  tfjs::Tensor b = o::randomNormal(tfjs::Shape{n, n}, 0, 1, 2);
  for (auto _ : state) {
    tfjs::Tensor c = o::add(a, b);
    c.dataSync();
    c.dispose();
  }
  a.dispose();
  b.dispose();
}
BENCHMARK(BM_Fig4_NativeAdd)->Arg(64)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  tfjs::backends::registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
