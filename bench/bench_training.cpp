// Training-throughput bench: the paper's differentiator is in-language
// authoring AND training (section 3). Measures model.fit examples/second
// for a small CNN per backend, and optimizer step cost (forward + backward
// + update) per optimizer — quantifying the eager tape's overhead profile.
#include <chrono>
#include <cstdio>

#include "backends/register.h"
#include "core/engine.h"
#include "data/synthetic.h"
#include "layers/conv_layers.h"
#include "layers/core_layers.h"
#include "layers/sequential.h"
#include "ops/ops.h"

namespace o = tfjs::ops;
namespace L = tfjs::layers;

namespace {

std::unique_ptr<L::Sequential> makeCnn(const std::string& name) {
  auto model = tfjs::sequential(name);
  L::Conv2DOptions c;
  c.filters = 8;
  c.kernelH = c.kernelW = 3;
  c.activation = "relu";
  c.padding = "same";
  model->add(std::make_shared<L::Conv2D>(c));
  model->add(std::make_shared<L::MaxPooling2D>());
  model->add(std::make_shared<L::Flatten>());
  L::DenseOptions d;
  d.units = 4;
  d.activation = "softmax";
  model->add(std::make_shared<L::Dense>(d));
  return model;
}

double fitThroughput(const std::string& backend, int examples) {
  tfjs::setBackend(backend);
  auto ds = tfjs::data::makeSyntheticDigits(examples, 12, 4);
  auto model = makeCnn("bench_fit_" + backend);
  L::CompileOptions c;
  c.optimizer = "adam";
  c.learningRate = 0.01f;
  c.loss = "categoricalCrossentropy";
  model->compile(c);
  L::FitOptions fit;
  fit.epochs = 1;
  fit.batchSize = 16;
  model->fit(ds.images, ds.labels, fit);  // warm-up epoch
  const auto t0 = std::chrono::steady_clock::now();
  model->fit(ds.images, ds.labels, fit);
  const double sec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  ds.dispose();
  model->dispose();
  return examples / sec;
}

double optimizerStepMs(const std::string& name) {
  tfjs::setBackend("native");
  tfjs::Variable w(o::randomNormal(tfjs::Shape{128, 128}, 0, 1, 1),
                   "bench_opt_w_" + name);
  tfjs::Tensor x = o::randomNormal(tfjs::Shape{32, 128}, 0, 1, 2);
  x.keep();
  auto optimizer = tfjs::autodiff::makeOptimizer(name, 0.001f);
  auto loss = [&] {
    return o::mean(o::square(o::matMul(x, w.value())));
  };
  optimizer->minimize(loss, false, std::array<tfjs::Variable, 1>{w});
  const int steps = 30;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) {
    optimizer->minimize(loss, false, std::array<tfjs::Variable, 1>{w});
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count() /
                    steps;
  x.dispose();
  w.dispose();
  return ms;
}

}  // namespace

int main() {
  tfjs::backends::registerAll();

  std::printf("== Training throughput: 1 epoch of a small CNN, batch 16 ==\n");
  for (const char* backend : {"native", "cpu", "webgl"}) {
    const double eps = fitThroughput(backend, 128);
    std::printf("  %-7s %8.1f examples/s\n", backend, eps);
  }

  std::printf("\n== Optimizer step cost (forward+backward+update, 128x128 "
              "dense) ==\n");
  for (const char* opt : {"sgd", "momentum", "rmsprop", "adam", "adagrad"}) {
    std::printf("  %-9s %7.3f ms/step\n", opt, optimizerStepMs(opt));
  }
  return 0;
}
