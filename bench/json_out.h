// Minimal JSON emitter for the bench harness. Benches write machine-readable
// BENCH_*.json files at the repo root (alongside their stdout tables) so the
// perf trajectory can be tracked across PRs.
//
// Supports exactly what the benches need: objects (insertion-ordered keys),
// arrays, numbers, strings, and booleans. No parsing, no dependencies.
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace tfjs::bench {

class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  static Json number(double v) {
    Json j(Kind::kNumber);
    j.num_ = v;
    return j;
  }
  static Json string(std::string v) {
    Json j(Kind::kString);
    j.str_ = std::move(v);
    return j;
  }
  static Json boolean(bool v) {
    Json j(Kind::kBool);
    j.num_ = v ? 1 : 0;
    return j;
  }

  Json& set(const std::string& key, Json v) {
    members_.emplace_back(key, std::move(v));
    return *this;
  }
  Json& set(const std::string& key, double v) {
    return set(key, number(v));
  }
  Json& set(const std::string& key, int v) {
    return set(key, number(v));
  }
  Json& set(const std::string& key, const std::string& v) {
    return set(key, string(v));
  }
  Json& set(const std::string& key, const char* v) {
    return set(key, string(v));
  }
  Json& push(Json v) {
    members_.emplace_back("", std::move(v));
    return *this;
  }

  std::string dump(int indent = 0) const {
    std::ostringstream os;
    write(os, indent);
    return os.str();
  }

  /// Writes the document to `path` (with a trailing newline); returns false
  /// and prints a warning on failure.
  bool writeFile(const std::string& path) const {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    f << dump() << "\n";
    return static_cast<bool>(f);
  }

 private:
  enum class Kind { kObject, kArray, kNumber, kString, kBool };

  explicit Json(Kind k) : kind_(k) {}

  static void escape(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default: os << c;
      }
    }
    os << '"';
  }

  void write(std::ostream& os, int depth) const {
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    const std::string childPad(static_cast<std::size_t>(depth + 1) * 2, ' ');
    switch (kind_) {
      case Kind::kNumber:
        if (std::isfinite(num_)) {
          // Integers print without a fraction so thread counts stay ints.
          if (num_ == static_cast<long long>(num_)) {
            os << static_cast<long long>(num_);
          } else {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.6g", num_);
            os << buf;
          }
        } else {
          os << "null";
        }
        break;
      case Kind::kString:
        escape(os, str_);
        break;
      case Kind::kBool:
        os << (num_ != 0 ? "true" : "false");
        break;
      case Kind::kObject:
      case Kind::kArray: {
        const char open = kind_ == Kind::kObject ? '{' : '[';
        const char close = kind_ == Kind::kObject ? '}' : ']';
        if (members_.empty()) {
          os << open << close;
          break;
        }
        os << open << '\n';
        for (std::size_t i = 0; i < members_.size(); ++i) {
          os << childPad;
          if (kind_ == Kind::kObject) {
            escape(os, members_[i].first);
            os << ": ";
          }
          members_[i].second.write(os, depth + 1);
          if (i + 1 < members_.size()) os << ',';
          os << '\n';
        }
        os << pad << close;
        break;
      }
    }
  }

  Kind kind_;
  double num_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace tfjs::bench
